//! Graph generators used as workloads by the experiments.
//!
//! The paper's constructions are analysed for arbitrary graphs; the
//! experiment suite exercises them on the classic random-graph families
//! below, plus the two integrality-gap gadgets from Section 3 of the paper
//! ([`complete_digraph`] for the `Ω(r)` gap of the flow LP on `K_n`, and
//! [`gap_gadget`] for the costly-edge gadget showing the gap of LP (3)).

use crate::{DiGraph, Graph, GraphError, NodeId, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// How generated edges are weighted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightKind {
    /// Every edge has weight 1 (the unit-length setting of Section 3).
    Unit,
    /// Weights drawn independently and uniformly from `[min, max)`.
    Uniform {
        /// Inclusive lower bound of the weight range.
        min: f64,
        /// Exclusive upper bound of the weight range.
        max: f64,
    },
    /// Euclidean distance between the embedded endpoints; only meaningful for
    /// geometric generators, others fall back to unit weights.
    Euclidean,
}

impl WeightKind {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WeightKind::Unit | WeightKind::Euclidean => 1.0,
            WeightKind::Uniform { min, max } => rng.gen_range(min..max),
        }
    }
}

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, weights: WeightKind, rng: &mut R) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1], got {p}"
    );
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                let w = weights.sample(rng);
                edges.push((u, v, w));
            }
        }
    }
    Graph::from_sorted_edges(n, edges).expect("pair loop emits sorted, valid edges")
}

/// A connected Erdős–Rényi-like graph: a random Hamiltonian path guarantees
/// connectivity, and every remaining pair is added independently with
/// probability `p`.
///
/// Experiments that need `d_{G}(u,v)` finite for all pairs use this variant.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or `n == 0`.
pub fn connected_gnp<R: Rng + ?Sized>(n: usize, p: f64, weights: WeightKind, rng: &mut R) -> Graph {
    assert!(n > 0, "connected graph needs at least one vertex");
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1], got {p}"
    );
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut g = Graph::new(n);
    for w in order.windows(2) {
        let weight = weights.sample(rng);
        g.add_edge(NodeId::new(w[0]), NodeId::new(w[1]), weight)
            .expect("path edges are valid");
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(NodeId::new(u), NodeId::new(v)) && rng.gen::<f64>() < p {
                let w = weights.sample(rng);
                g.add_edge(NodeId::new(u), NodeId::new(v), w)
                    .expect("generated edges are valid");
            }
        }
    }
    g
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// between every pair at Euclidean distance at most `radius`.
///
/// With [`WeightKind::Euclidean`] the edge weight is the point distance,
/// otherwise weights are sampled from `weights`.
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    weights: WeightKind,
    rng: &mut R,
) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius {
                let w = match weights {
                    WeightKind::Euclidean => d.max(1e-9),
                    other => other.sample(rng),
                };
                edges.push((u, v, w));
            }
        }
    }
    Graph::from_sorted_edges(n, edges).expect("pair loop emits sorted, valid edges")
}

/// The `rows × cols` grid graph with unit edge weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), 1.0));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), 1.0));
            }
        }
    }
    Graph::from_sorted_edges(rows * cols, edges).expect("row-major emission is sorted")
}

/// The complete graph `K_n` with unit edge weights.
pub fn complete(n: usize) -> Graph {
    let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v, 1.0)));
    Graph::from_sorted_edges(n, edges).expect("pair loop emits sorted, valid edges")
}

/// The complete bipartite graph `K_{a,b}` with unit edge weights.
///
/// Vertices `0..a` form one side, `a..a+b` the other. Every 2-spanner of
/// `K_{a,b}` must contain every edge, which is the paper's example of why no
/// non-trivial absolute size bound exists for stretch 2.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let edges = (0..a).flat_map(move |u| (0..b).map(move |v| (u, a + v, 1.0)));
    Graph::from_sorted_edges(a + b, edges).expect("side-by-side emission is sorted")
}

/// The `dim`-dimensional hypercube graph (`2^dim` vertices) with unit
/// weights.
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut edges = Vec::new();
    for u in 0..n {
        for b in 0..dim {
            let v = u ^ (1usize << b);
            if u < v {
                edges.push((u, v, 1.0));
            }
        }
    }
    Graph::from_sorted_edges(n, edges).expect("ascending-bit emission is sorted")
}

/// The path graph on `n` vertices with unit weights.
pub fn path(n: usize) -> Graph {
    let edges = (1..n).map(|i| (i - 1, i, 1.0));
    Graph::from_sorted_edges(n, edges).expect("consecutive pairs are sorted")
}

/// The cycle graph on `n >= 3` vertices with unit weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least three vertices");
    let mut g = path(n);
    g.add_edge(NodeId::new(n - 1), NodeId::new(0), 1.0)
        .expect("cycle closing edge is valid");
    g
}

/// Preferential-attachment (Barabási–Albert style) graph: vertices arrive one
/// at a time and attach to `m` existing vertices chosen proportionally to
/// their degree.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more vertices than the attachment count");
    let mut g = Graph::new(n);
    // Degree-weighted urn: each endpoint occurrence is one entry.
    let mut urn: Vec<usize> = Vec::new();
    // Seed clique on the first m+1 vertices.
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_edge(NodeId::new(u), NodeId::new(v), 1.0)
                .expect("seed clique edges are valid");
            urn.push(u);
            urn.push(v);
        }
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::HashSet::new();
        let mut guard = 0;
        while targets.len() < m && guard < 100 * m {
            let t = urn[rng.gen_range(0..urn.len())];
            targets.insert(t);
            guard += 1;
        }
        for &t in &targets {
            g.add_edge(NodeId::new(v), NodeId::new(t), 1.0)
                .expect("attachment edges are valid");
            urn.push(v);
            urn.push(t);
        }
    }
    g
}

/// A near-`d`-regular random graph built with the configuration model,
/// discarding self-loops and parallel edges (so a few vertices may end up
/// with degree slightly below `d`).
///
/// Used by the bounded-degree experiments for Theorem 3.4.
///
/// # Panics
///
/// Panics if `d >= n`.
pub fn random_near_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d < n, "degree must be smaller than the number of vertices");
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut g = Graph::new(n);
    for pair in stubs.chunks(2) {
        if pair.len() < 2 {
            break;
        }
        let (u, v) = (pair[0], pair[1]);
        if u != v && !g.has_edge(NodeId::new(u), NodeId::new(v)) {
            g.add_edge(NodeId::new(u), NodeId::new(v), 1.0)
                .expect("configuration-model edges are valid");
        }
    }
    g
}

/// Random directed graph: every ordered pair `(u, v)`, `u != v`, becomes an
/// arc independently with probability `p`, with costs drawn from `costs`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn directed_gnp<R: Rng + ?Sized>(n: usize, p: f64, costs: WeightKind, rng: &mut R) -> DiGraph {
    assert!(
        (0.0..=1.0).contains(&p),
        "arc probability must be in [0, 1], got {p}"
    );
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < p {
                let c = costs.sample(rng);
                g.add_arc(NodeId::new(u), NodeId::new(v), c)
                    .expect("generated arcs are valid");
            }
        }
    }
    g
}

/// The complete directed graph on `n` vertices with unit arc costs.
///
/// Section 3.1 of the paper uses `K_n` to exhibit the `Ω(r)` integrality gap
/// of the naive flow LP: the optimum needs at least `r·n` arcs while the LP
/// pays only `O(n)`.
pub fn complete_digraph(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_arc(NodeId::new(u), NodeId::new(v), 1.0)
                    .expect("complete digraph arcs are valid");
            }
        }
    }
    g
}

/// The star graph: vertex 0 joined to every other vertex, unit weights.
///
/// The star is the extreme case for fault tolerance: removing the hub
/// disconnects everything, so no spanner of the star is 1-fault tolerant
/// with finite stretch — a useful sanity instance for the verifiers.
pub fn star(n: usize) -> Graph {
    let edges = (1..n).map(|v| (0, v, 1.0));
    Graph::from_sorted_edges(n, edges).expect("hub emission is sorted")
}

/// The wheel graph: a cycle on vertices `1..n` plus a hub (vertex 0) joined
/// to every cycle vertex, unit weights.
///
/// # Panics
///
/// Panics if `n < 4` (the rim needs at least three vertices).
pub fn wheel(n: usize) -> Graph {
    assert!(
        n >= 4,
        "a wheel needs a hub and at least three rim vertices"
    );
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(NodeId::new(0), NodeId::new(v), 1.0)
            .expect("wheel spoke edges are valid");
        let next = if v == n - 1 { 1 } else { v + 1 };
        g.add_edge(NodeId::new(v), NodeId::new(next), 1.0)
            .expect("wheel rim edges are valid");
    }
    g
}

/// The barbell graph: two cliques `K_k` joined by a single bridge edge,
/// unit weights. Vertices `0..k` form one clique, `k..2k` the other; the
/// bridge joins `k - 1` and `k`.
///
/// The bridge endpoints are articulation points, so the barbell is the
/// canonical instance where a single well-placed fault is fatal.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 2, "each bell needs at least two vertices");
    let mut g = Graph::new(2 * k);
    for offset in [0, k] {
        for u in 0..k {
            for v in (u + 1)..k {
                g.add_edge(NodeId::new(offset + u), NodeId::new(offset + v), 1.0)
                    .expect("clique edges are valid");
            }
        }
    }
    g.add_edge(NodeId::new(k - 1), NodeId::new(k), 1.0)
        .expect("bridge edge is valid");
    g
}

/// Watts–Strogatz small-world graph: a ring lattice where every vertex is
/// joined to its `k` nearest neighbors (`k/2` on each side), with each edge
/// rewired to a random endpoint independently with probability `beta`.
///
/// Rewirings that would create self-loops or parallel edges are skipped, so
/// the graph stays simple and the edge count stays `n * k / 2`-ish.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is not in `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k % 2 == 0, "lattice degree k must be even");
    assert!(
        k < n,
        "lattice degree must be smaller than the number of vertices"
    );
    assert!(
        (0.0..=1.0).contains(&beta),
        "rewiring probability must be in [0, 1], got {beta}"
    );
    let mut g = Graph::new(n);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let (mut a, mut b) = (u, v);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a uniformly random vertex.
                let candidate = rng.gen_range(0..n);
                if candidate != a && !g.has_edge(NodeId::new(a), NodeId::new(candidate)) {
                    b = candidate;
                }
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            if !g.has_edge(NodeId::new(a), NodeId::new(b)) {
                g.add_edge(NodeId::new(a), NodeId::new(b), 1.0)
                    .expect("small-world edges are valid");
            }
        }
    }
    g
}

/// Random bipartite graph: sides `0..a` and `a..a+b`, every cross pair an
/// edge independently with probability `p`, unit weights.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn random_bipartite<R: Rng + ?Sized>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1], got {p}"
    );
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId::new(u), NodeId::new(a + v), 1.0)
                    .expect("bipartite edges are valid");
            }
        }
    }
    g
}

/// A directed graph whose in- and out-degrees are bounded by `d`: the
/// bidirected version of a [`random_near_regular`] undirected graph, with
/// costs drawn from `costs`.
///
/// Used by the bounded-degree experiments for Theorem 3.4, which is stated
/// for maximum (in and out) degree `Δ`.
///
/// # Panics
///
/// Panics if `d >= n`.
pub fn bounded_degree_digraph<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    costs: WeightKind,
    rng: &mut R,
) -> DiGraph {
    let base = random_near_regular(n, d, rng);
    let mut g = DiGraph::new(n);
    for (_, e) in base.edges() {
        let c1 = costs.sample(rng);
        let c2 = costs.sample(rng);
        g.add_arc(e.u, e.v, c1).expect("arcs mirror valid edges");
        g.add_arc(e.v, e.u, c2).expect("arcs mirror valid edges");
    }
    g
}

/// The Section 3.2 integrality-gap gadget for LP (3).
///
/// Vertices: `u = 0`, `v = 1`, and midpoints `w_1..w_r` (ids `2..r+2`).
/// Arcs: `(u, v)` with cost `expensive_cost`, and unit-cost arcs
/// `(u, w_i)` and `(w_i, v)` for every `i`.
///
/// The set of all midpoints is a valid fault set, so every `r`-fault-tolerant
/// 2-spanner must buy the expensive `(u, v)` arc; without the knapsack-cover
/// inequalities the LP pays only `expensive_cost / (r + 1) + 2r`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `r == 0`.
pub fn gap_gadget(r: usize, expensive_cost: f64) -> Result<DiGraph> {
    if r == 0 {
        return Err(GraphError::InvalidParameter {
            message: "the gap gadget needs at least one midpoint (r >= 1)".to_string(),
        });
    }
    let mut g = DiGraph::new(r + 2);
    let u = NodeId::new(0);
    let v = NodeId::new(1);
    g.add_arc(u, v, expensive_cost)?;
    for i in 0..r {
        let w = NodeId::new(2 + i);
        g.add_arc(u, w, 1.0)?;
        g.add_arc(w, v, 1.0)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn gnp_edge_count_is_reasonable() {
        let g = gnp(60, 0.5, WeightKind::Unit, &mut rng());
        let max = 60 * 59 / 2;
        // With p = 1/2 the edge count concentrates around max/2.
        assert!(g.edge_count() > max / 3 && g.edge_count() < 2 * max / 3);
        assert!(g.is_unit_weight());
        let empty = gnp(20, 0.0, WeightKind::Unit, &mut rng());
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, WeightKind::Unit, &mut rng());
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_uniform_weights_in_range() {
        let g = gnp(
            20,
            0.5,
            WeightKind::Uniform { min: 2.0, max: 3.0 },
            &mut rng(),
        );
        for (_, e) in g.edges() {
            assert!(e.weight >= 2.0 && e.weight < 3.0);
        }
    }

    #[test]
    #[should_panic]
    fn gnp_rejects_bad_probability() {
        gnp(5, 1.5, WeightKind::Unit, &mut rng());
    }

    #[test]
    fn connected_gnp_is_connected() {
        for p in [0.0, 0.05, 0.3] {
            let g = connected_gnp(50, p, WeightKind::Unit, &mut rng());
            assert!(g.is_connected(), "p={p} not connected");
        }
    }

    #[test]
    fn geometric_weights_match_kind() {
        let g = random_geometric(40, 0.4, WeightKind::Euclidean, &mut rng());
        for (_, e) in g.edges() {
            assert!(e.weight > 0.0 && e.weight <= 0.4 + 1e-9);
        }
        let gu = random_geometric(40, 0.4, WeightKind::Unit, &mut rng());
        assert!(gu.is_unit_weight());
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn complete_and_bipartite() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        let b = complete_bipartite(3, 4);
        assert_eq!(b.edge_count(), 12);
        assert_eq!(b.node_count(), 7);
        // No edge inside a side.
        assert!(!b.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(b.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!(g.is_connected());
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5);
        assert_eq!(p.edge_count(), 4);
        let c = cycle(5);
        assert_eq!(c.edge_count(), 5);
        for v in c.nodes() {
            assert_eq!(c.degree(v), 2);
        }
    }

    #[test]
    #[should_panic]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn preferential_attachment_structure() {
        let g = preferential_attachment(100, 3, &mut rng());
        assert_eq!(g.node_count(), 100);
        assert!(g.is_connected());
        // Every non-seed vertex attaches to at least one existing vertex.
        assert!(g.edge_count() >= 100 - 4 + 3); // seed clique has 3 choose 2 edges
    }

    #[test]
    fn near_regular_degree_bound() {
        let g = random_near_regular(60, 6, &mut rng());
        assert!(
            g.max_degree() <= 7,
            "configuration model should stay near d"
        );
        for v in g.nodes() {
            assert!(g.degree(v) <= 6 + 1);
        }
    }

    #[test]
    fn directed_gnp_and_complete() {
        let g = directed_gnp(20, 0.3, WeightKind::Unit, &mut rng());
        assert!(g.arc_count() > 0);
        let k = complete_digraph(5);
        assert_eq!(k.arc_count(), 20);
        assert_eq!(k.max_degree(), 4);
    }

    #[test]
    fn star_and_wheel_structure() {
        let s = star(6);
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.degree(NodeId::new(0)), 5);
        assert_eq!(s.max_degree(), 5);
        let w = wheel(7);
        assert_eq!(w.node_count(), 7);
        assert_eq!(w.edge_count(), 12); // 6 spokes + 6 rim edges
        assert_eq!(w.degree(NodeId::new(0)), 6);
        for v in 1..7 {
            assert_eq!(w.degree(NodeId::new(v)), 3);
        }
        assert!(w.is_connected());
    }

    #[test]
    #[should_panic]
    fn wheel_too_small_panics() {
        wheel(3);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 2 * 6 + 1);
        assert!(g.is_connected());
        assert!(g.has_edge(NodeId::new(3), NodeId::new(4)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(7)));
    }

    #[test]
    fn watts_strogatz_structure() {
        let g = watts_strogatz(40, 4, 0.0, &mut rng());
        // With beta = 0 the ring lattice is exact: every vertex has degree 4.
        assert_eq!(g.edge_count(), 80);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
        let rewired = watts_strogatz(40, 4, 0.3, &mut rng());
        assert!(rewired.edge_count() <= 80);
        assert!(rewired.edge_count() >= 60);
    }

    #[test]
    #[should_panic]
    fn watts_strogatz_rejects_odd_degree() {
        watts_strogatz(10, 3, 0.1, &mut rng());
    }

    #[test]
    fn random_bipartite_structure() {
        let g = random_bipartite(6, 8, 1.0, &mut rng());
        assert_eq!(g.edge_count(), 48);
        for u in 0..6 {
            for v in 0..6 {
                if u != v {
                    assert!(!g.has_edge(NodeId::new(u), NodeId::new(v)));
                }
            }
        }
        let empty = random_bipartite(4, 4, 0.0, &mut rng());
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn bounded_degree_digraph_respects_delta() {
        let g = bounded_degree_digraph(30, 5, WeightKind::Unit, &mut rng());
        assert!(g.max_degree() <= 6);
        // Arcs come in opposite pairs.
        for (_, a) in g.arcs() {
            assert!(g.has_arc(a.head, a.tail));
        }
    }

    #[test]
    fn gap_gadget_structure() {
        let g = gap_gadget(4, 100.0).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.arc_count(), 1 + 2 * 4);
        assert_eq!(g.arc(crate::ArcId::new(0)).cost, 100.0);
        let mids: Vec<_> = g
            .two_path_midpoints(NodeId::new(0), NodeId::new(1))
            .collect();
        assert_eq!(mids.len(), 4);
        assert!(gap_gadget(0, 1.0).is_err());
    }
}
