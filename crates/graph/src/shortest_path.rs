//! Shortest-path computations on the graph substrate.
//!
//! Everything the spanner constructions and verification oracles need:
//! Dijkstra on the full graph, on an edge-subset (a candidate spanner), and
//! restricted to a surviving vertex set (after faults), plus bounded-radius
//! and hop-count variants.

use crate::{EdgeSet, Graph, GraphError, NodeId, Result, INFINITY};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry ordered by ascending distance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the minimum
        // distance on top. Distances are finite and non-negative, so
        // partial_cmp never fails for entries that reach the heap.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Options restricting a shortest-path computation.
///
/// The default options impose no restriction; the builder-style setters
/// restrict the traversal to a subset of edges (a candidate spanner), to a
/// set of surviving vertices (after faults), or to a maximum search radius.
///
/// # Example
///
/// ```
/// use ftspan_graph::{Graph, NodeId, shortest_path::SsspOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_unit_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])?;
/// let dead = vec![false, true, false, false];
/// let dist = SsspOptions::new().forbid_vertices(&dead).run(&g, NodeId::new(0))?;
/// // With vertex 1 removed, vertex 2 is reached the long way around.
/// assert_eq!(dist[2], 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SsspOptions<'a> {
    edges: Option<&'a EdgeSet>,
    dead: Option<&'a [bool]>,
    cutoff: Option<f64>,
}

impl<'a> SsspOptions<'a> {
    /// Creates options with no restrictions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts the traversal to edges contained in `edges`.
    pub fn restrict_edges(mut self, edges: &'a EdgeSet) -> Self {
        self.edges = Some(edges);
        self
    }

    /// Forbids traversal through vertices `v` with `dead[v] == true`.
    ///
    /// If the source itself is dead, every distance is `INFINITY`.
    pub fn forbid_vertices(mut self, dead: &'a [bool]) -> Self {
        self.dead = Some(dead);
        self
    }

    /// Stops the search once the tentative distance exceeds `cutoff`;
    /// vertices further than the cutoff report `INFINITY`.
    pub fn cutoff(mut self, cutoff: f64) -> Self {
        self.cutoff = Some(cutoff);
        self
    }

    /// Runs Dijkstra from `source` under these options and returns the
    /// distance to every vertex (`INFINITY` when unreachable).
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if `source` is out of bounds or the
    ///   forbidden-vertex slice has the wrong length.
    /// * [`GraphError::MismatchedEdgeSet`] if the edge restriction was built
    ///   for a different graph.
    pub fn run(self, graph: &Graph, source: NodeId) -> Result<Vec<f64>> {
        let n = graph.node_count();
        if source.index() >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: source.index(),
                len: n,
            });
        }
        if let Some(dead) = self.dead {
            if dead.len() != n {
                return Err(GraphError::NodeOutOfBounds {
                    node: dead.len(),
                    len: n,
                });
            }
        }
        if let Some(edges) = self.edges {
            if edges.capacity() != graph.edge_count() {
                return Err(GraphError::MismatchedEdgeSet {
                    set_len: edges.capacity(),
                    graph_len: graph.edge_count(),
                });
            }
        }

        let mut dist = vec![INFINITY; n];
        let is_dead = |v: NodeId| self.dead.is_some_and(|d| d[v.index()]);
        if is_dead(source) {
            return Ok(dist);
        }
        let mut heap = BinaryHeap::new();
        dist[source.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });

        while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
            if d > dist[v.index()] {
                continue;
            }
            if let Some(c) = self.cutoff {
                if d > c {
                    continue;
                }
            }
            for (u, eid) in graph.incident(v) {
                if is_dead(u) {
                    continue;
                }
                if let Some(edges) = self.edges {
                    if !edges.contains(eid) {
                        continue;
                    }
                }
                let nd = d + graph.edge(eid).weight;
                if let Some(c) = self.cutoff {
                    if nd > c {
                        continue;
                    }
                }
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    heap.push(HeapEntry { dist: nd, node: u });
                }
            }
        }
        Ok(dist)
    }
}

/// Single-source shortest-path distances from `source` in `graph`.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use ftspan_graph::{Graph, NodeId, shortest_path};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0)])?;
/// let d = shortest_path::dijkstra(&g, NodeId::new(0))?;
/// assert_eq!(d[2], 3.0);
/// # Ok(())
/// # }
/// ```
pub fn dijkstra(graph: &Graph, source: NodeId) -> Result<Vec<f64>> {
    SsspOptions::new().run(graph, source)
}

/// Shortest-path distances from `source` using only the edges in `edges`.
///
/// # Errors
///
/// Returns an error if `source` is out of bounds or `edges` was built for a
/// different graph.
pub fn dijkstra_on_edges(graph: &Graph, edges: &EdgeSet, source: NodeId) -> Result<Vec<f64>> {
    SsspOptions::new().restrict_edges(edges).run(graph, source)
}

/// Shortest-path distances from `source` avoiding the vertices marked `true`
/// in `dead`.
///
/// # Errors
///
/// Returns an error if `source` is out of bounds or `dead` has the wrong
/// length.
pub fn dijkstra_avoiding(graph: &Graph, source: NodeId, dead: &[bool]) -> Result<Vec<f64>> {
    SsspOptions::new().forbid_vertices(dead).run(graph, source)
}

/// Shortest-path distance between a single pair of vertices.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if either endpoint is out of
/// bounds.
pub fn distance(graph: &Graph, u: NodeId, v: NodeId) -> Result<f64> {
    if v.index() >= graph.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            node: v.index(),
            len: graph.node_count(),
        });
    }
    let d = dijkstra(graph, u)?;
    Ok(d[v.index()])
}

/// Hop-count (unweighted BFS) distances from `source`.
///
/// Unreachable vertices report `usize::MAX`.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `source` is out of bounds.
pub fn bfs_hops(graph: &Graph, source: NodeId) -> Result<Vec<usize>> {
    let n = graph.node_count();
    if source.index() >= n {
        return Err(GraphError::NodeOutOfBounds {
            node: source.index(),
            len: n,
        });
    }
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for u in graph.neighbors(v) {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    Ok(dist)
}

/// Vertices within hop-distance `radius` of `source`, including `source`
/// itself, in BFS order.
///
/// This is the primitive the padded-decomposition construction (Lemma 3.7 of
/// the paper) uses: a cluster is the ball of radius `r_u` around its center.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `source` is out of bounds.
pub fn ball(graph: &Graph, source: NodeId, radius: usize) -> Result<Vec<NodeId>> {
    let hops = bfs_hops(graph, source)?;
    Ok(graph
        .nodes()
        .filter(|v| hops[v.index()] <= radius)
        .collect())
}

/// All-pairs shortest-path distances, computed by running Dijkstra from every
/// vertex. Intended for the small graphs used by verification and tests.
///
/// # Errors
///
/// Never fails for a well-formed graph; propagates internal errors otherwise.
pub fn all_pairs(graph: &Graph) -> Result<Vec<Vec<f64>>> {
    graph.nodes().map(|v| dijkstra(graph, v)).collect()
}

/// A circular bucket queue (Dial's algorithm, generalized to real weights)
/// for label-correcting shortest-path runs.
///
/// Tentative distances are binned into buckets of width `delta` and drained
/// in ascending bucket order, replacing the binary heap's `O(log n)`
/// push/pop with `O(1)` array appends. Entries are lazily deleted: a popped
/// `(dist, node)` pair whose `dist` exceeds the node's current tentative
/// distance is stale and must be skipped by the caller. Within a bucket the
/// drain order is arbitrary, so a node can be settled with a provisional
/// distance and corrected later — run to exhaustion, the relaxation fixpoint
/// (and therefore every distance, bit for bit) is the same one binary-heap
/// Dijkstra computes, because floating-point addition of non-negative
/// weights is monotone and the fixpoint of strict-improvement relaxation is
/// unique.
///
/// # Delta-choice heuristic
///
/// [`BucketQueue::suggest_delta`] picks the **mean edge weight**, clamped
/// from below by `max_weight / 4096`:
///
/// * the mean keeps the expansion order close to Dijkstra's, so nodes are
///   rarely popped before their final distance is known and re-relaxations
///   stay rare;
/// * the clamp bounds the ring to roughly `4096` buckets
///   (`ceil(max_weight / delta) + 3`), so resetting the queue between runs
///   stays cheap even on graphs whose weights span many orders of
///   magnitude;
/// * unit-weight graphs get `delta = 1`, which degenerates to textbook
///   Dial — exact Dijkstra order with `O(1)` queue operations.
///
/// Any positive `delta` is *correct* (it only shifts work between bucket
/// scanning and re-relaxation), so the heuristic is purely about
/// performance.
#[derive(Debug, Clone, Default)]
pub struct BucketQueue {
    /// Ring of buckets; absolute bucket `i` lives at slot `i % buckets.len()`.
    buckets: Vec<Vec<(f64, NodeId)>>,
    /// Bucket width (always positive after `reset`).
    delta: f64,
    /// Absolute index of the bucket currently being drained.
    cursor: u64,
    /// Number of entries across all buckets (including stale ones).
    live: usize,
}

impl BucketQueue {
    /// Creates an empty queue; buckets are sized by [`BucketQueue::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Suggested bucket width for a graph with the given half-edge weight
    /// sum, maximum edge weight and half-edge count (see the type-level
    /// docs for the rationale). Falls back to `1.0` for empty or all-zero
    /// weight profiles.
    pub fn suggest_delta(weight_sum: f64, max_weight: f64, half_edges: usize) -> f64 {
        if half_edges == 0 || weight_sum.is_nan() || weight_sum <= 0.0 {
            return 1.0;
        }
        let mean = weight_sum / half_edges as f64;
        mean.max(max_weight / 4096.0)
    }

    /// Clears the queue and sizes the ring for distances that grow by at
    /// most `max_weight` per relaxation, binned at width `delta`.
    ///
    /// A non-positive or non-finite `delta` is replaced by `1.0`. The ring
    /// holds `ceil(max_weight / delta) + 3` buckets: entries pushed while
    /// draining absolute bucket `b` land in `[b, b + ceil(max_weight /
    /// delta) + 1]` (the `+1` absorbs floating-point rounding of the new
    /// tentative distance), so live entries never wrap onto each other.
    pub fn reset(&mut self, delta: f64, max_weight: f64) {
        let delta = if delta.is_finite() && delta > 0.0 {
            delta
        } else {
            1.0
        };
        let span = if max_weight.is_finite() && max_weight > 0.0 {
            // Cap the ring: an undersized ring only wraps distant buckets
            // onto each other (processed out of order but still correct —
            // the relaxation fixpoint does not depend on drain order).
            ((max_weight / delta).ceil() as usize).min(1 << 16)
        } else {
            0
        };
        let want = span.saturating_add(3);
        if self.buckets.len() < want {
            self.buckets.resize_with(want, Vec::new);
        }
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.delta = delta;
        self.cursor = 0;
        self.live = 0;
    }

    /// Enqueues `node` at tentative distance `dist` (finite, non-negative).
    ///
    /// # Panics
    ///
    /// Panics if called before [`BucketQueue::reset`].
    pub fn push(&mut self, dist: f64, node: NodeId) {
        let ring = self.buckets.len() as u64;
        // Never file an entry before the drain cursor: monotone relaxation
        // guarantees new distances belong to the current bucket or later,
        // and clamping keeps rounding edge cases inside the live window.
        let index = ((dist / self.delta) as u64).max(self.cursor);
        self.buckets[(index % ring) as usize].push((dist, node));
        self.live += 1;
    }

    /// Removes and returns an entry from the lowest non-empty bucket, or
    /// `None` when the queue is exhausted. Entries may be stale; callers
    /// compare the returned distance against their tentative-distance array
    /// and skip outdated pairs.
    pub fn pop(&mut self) -> Option<(f64, NodeId)> {
        while self.live > 0 {
            let ring = self.buckets.len() as u64;
            let slot = (self.cursor % ring) as usize;
            if let Some(entry) = self.buckets[slot].pop() {
                self.live -= 1;
                return Some(entry);
            }
            self.cursor += 1;
        }
        None
    }

    /// Returns `true` if no entries (stale or not) remain queued.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeId;

    fn weighted_square() -> Graph {
        // 0 -1- 1
        // |     |
        // 4     1
        // |     |
        // 3 -1- 2
        Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 4.0)]).unwrap()
    }

    #[test]
    fn dijkstra_basic() {
        let g = weighted_square();
        let d = dijkstra(&g, NodeId::new(0)).unwrap();
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0).unwrap();
        let d = dijkstra(&g, NodeId::new(0)).unwrap();
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn dijkstra_source_out_of_bounds() {
        let g = weighted_square();
        assert!(dijkstra(&g, NodeId::new(10)).is_err());
        assert!(distance(&g, NodeId::new(0), NodeId::new(10)).is_err());
    }

    #[test]
    fn dijkstra_respects_edge_restriction() {
        let g = weighted_square();
        let mut s = g.empty_edge_set();
        s.insert(EdgeId::new(0)); // (0,1)
        s.insert(EdgeId::new(3)); // (3,0)
        let d = dijkstra_on_edges(&g, &s, NodeId::new(0)).unwrap();
        assert_eq!(d[1], 1.0);
        assert_eq!(d[3], 4.0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn dijkstra_respects_dead_vertices() {
        let g = weighted_square();
        let dead = vec![false, true, false, false];
        let d = dijkstra_avoiding(&g, NodeId::new(0), &dead).unwrap();
        assert!(d[1].is_infinite());
        assert_eq!(d[2], 5.0); // forced around through vertex 3
                               // Dead source: everything infinite.
        let dead_src = vec![true, false, false, false];
        let d2 = dijkstra_avoiding(&g, NodeId::new(0), &dead_src).unwrap();
        assert!(d2.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn dijkstra_cutoff_prunes() {
        let g = weighted_square();
        let d = SsspOptions::new()
            .cutoff(1.5)
            .run(&g, NodeId::new(0))
            .unwrap();
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
    }

    #[test]
    fn pairwise_distance() {
        let g = weighted_square();
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(3)).unwrap(), 3.0);
        assert_eq!(distance(&g, NodeId::new(3), NodeId::new(0)).unwrap(), 3.0);
    }

    #[test]
    fn bfs_and_ball() {
        let g = Graph::from_unit_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let hops = bfs_hops(&g, NodeId::new(0)).unwrap();
        assert_eq!(hops[4], 4);
        assert_eq!(hops[5], usize::MAX);
        let b = ball(&g, NodeId::new(0), 2).unwrap();
        assert_eq!(b.len(), 3);
        assert!(b.contains(&NodeId::new(2)));
        assert!(!b.contains(&NodeId::new(3)));
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = weighted_square();
        let apsp = all_pairs(&g).unwrap();
        for (i, row) in apsp.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, apsp[j][i]);
            }
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn bucket_queue_drains_in_bucket_order() {
        let mut q = BucketQueue::new();
        q.reset(1.0, 4.0);
        q.push(0.0, NodeId::new(0));
        q.push(3.5, NodeId::new(3));
        q.push(1.2, NodeId::new(1));
        q.push(1.7, NodeId::new(2));
        let mut popped = Vec::new();
        while let Some((d, v)) = q.pop() {
            popped.push((d, v.index()));
        }
        assert!(q.is_empty());
        // Bucket indices (floor(d / delta)) come out ascending; order within
        // a bucket is unspecified.
        let indices: Vec<u64> = popped.iter().map(|&(d, _)| d as u64).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
        assert_eq!(popped.len(), 4);
    }

    #[test]
    fn bucket_queue_handles_same_bucket_reinsertion() {
        // Zero-weight relaxations re-file into the bucket being drained.
        let mut q = BucketQueue::new();
        q.reset(1.0, 1.0);
        q.push(0.5, NodeId::new(0));
        assert!(q.pop().is_some());
        q.push(0.5, NodeId::new(1)); // same absolute bucket as the cursor
        assert_eq!(q.pop(), Some((0.5, NodeId::new(1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bucket_queue_delta_heuristic() {
        // Unit weights: mean is exactly 1.
        assert_eq!(BucketQueue::suggest_delta(10.0, 1.0, 10), 1.0);
        // Heavy-tailed weights: the clamp keeps the ring bounded.
        let delta = BucketQueue::suggest_delta(1.0e3, 1.0e9, 1000);
        assert!(delta >= 1.0e9 / 4096.0);
        // Degenerate profiles fall back to 1.
        assert_eq!(BucketQueue::suggest_delta(0.0, 0.0, 0), 1.0);
        assert_eq!(BucketQueue::suggest_delta(0.0, 0.0, 5), 1.0);
        // Reset survives nonsense deltas.
        let mut q = BucketQueue::new();
        q.reset(f64::NAN, f64::INFINITY);
        q.push(2.0, NodeId::new(0));
        assert_eq!(q.pop(), Some((2.0, NodeId::new(0))));
    }

    #[test]
    fn options_validate_inputs() {
        let g = weighted_square();
        let bad_dead = vec![false; 2];
        assert!(SsspOptions::new()
            .forbid_vertices(&bad_dead)
            .run(&g, NodeId::new(0))
            .is_err());
        let bad_edges = EdgeSet::new(1);
        assert!(SsspOptions::new()
            .restrict_edges(&bad_edges)
            .run(&g, NodeId::new(0))
            .is_err());
    }
}
