//! Connectivity structure: components, union–find, cut vertices and
//! vertex connectivity.
//!
//! Fault tolerance is fundamentally a connectivity property: an
//! `r`-fault-tolerant spanner can only exist with finite stretch guarantees
//! where the input graph itself survives `r` faults. The helpers in this
//! module are used by the adversarial fault generators in [`crate::faults`],
//! by the workload generators (to report how well-connected an instance is),
//! and by the experiments to choose meaningful values of `r`.
//!
//! * [`UnionFind`] — disjoint-set forest, also used by Kruskal's algorithm in
//!   [`crate::tree`].
//! * [`connected_components`] / [`ComponentLabels`] — component labelling.
//! * [`articulation_points`] — cut vertices (a single-fault attack surface).
//! * [`local_vertex_connectivity`] / [`vertex_connectivity`] — Menger-style
//!   counts of internally vertex-disjoint paths, computed with unit-capacity
//!   augmenting paths on the vertex-split digraph.

use crate::{Graph, GraphError, NodeId, Result};

/// A disjoint-set forest (union–find) over `0..n` with union by rank and
/// path compression.
///
/// # Example
///
/// ```
/// use ftspan_graph::components::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates a forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently in the forest.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`.
    ///
    /// Returns `true` if the two were in different sets (a merge happened).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }
}

/// A labelling of every vertex by its connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<usize>,
    count: usize,
}

impl ComponentLabels {
    /// Number of connected components (0 for the empty graph).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component label of vertex `v` (labels are dense, `0..count`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn label(&self, v: NodeId) -> usize {
        self.labels[v.index()]
    }

    /// Returns `true` if `u` and `v` lie in the same component.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of bounds.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }

    /// Sizes of all components, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// The vertices of the component with the given label.
    pub fn members(&self, label: usize) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == label)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Labels the connected components of `graph` by breadth-first search.
///
/// # Example
///
/// ```
/// use ftspan_graph::{components, Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_unit_edges(5, [(0, 1), (2, 3)])?;
/// let cc = components::connected_components(&g);
/// assert_eq!(cc.count(), 3);
/// assert!(cc.same_component(NodeId::new(0), NodeId::new(1)));
/// assert!(!cc.same_component(NodeId::new(1), NodeId::new(2)));
/// # Ok(())
/// # }
/// ```
pub fn connected_components(graph: &Graph) -> ComponentLabels {
    let n = graph.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = count;
        queue.push_back(NodeId::new(start));
        while let Some(v) = queue.pop_front() {
            for u in graph.neighbors(v) {
                if labels[u.index()] == usize::MAX {
                    labels[u.index()] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    ComponentLabels { labels, count }
}

/// The articulation points (cut vertices) of `graph`: vertices whose removal
/// increases the number of connected components.
///
/// Computed with the classic Tarjan/Hopcroft lowpoint depth-first search in
/// `O(n + m)` time. A graph with an articulation point admits a *single*
/// fault that disconnects it, so no 1-fault-tolerant spanner can preserve
/// finite stretch across that cut — this is the first vertex an adversarial
/// fault generator should target.
pub fn articulation_points(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    // Iterative DFS to avoid recursion limits on long paths.
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        parent: usize,
        child_count: usize,
        neighbor_idx: usize,
    }

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            v: root,
            parent: usize::MAX,
            child_count: 0,
            neighbor_idx: 0,
        }];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(top) = stack.last().copied() {
            let neighbors: Vec<usize> = graph
                .neighbors(NodeId::new(top.v))
                .map(NodeId::index)
                .collect();
            if top.neighbor_idx < neighbors.len() {
                let u = neighbors[top.neighbor_idx];
                stack.last_mut().expect("stack is non-empty").neighbor_idx += 1;
                if disc[u] == usize::MAX {
                    stack.last_mut().expect("stack is non-empty").child_count += 1;
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push(Frame {
                        v: u,
                        parent: top.v,
                        child_count: 0,
                        neighbor_idx: 0,
                    });
                } else if u != top.parent {
                    low[top.v] = low[top.v].min(disc[u]);
                }
            } else {
                let done = stack.pop().expect("stack is non-empty");
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.v;
                    low[p] = low[p].min(low[done.v]);
                    // Non-root parent is a cut vertex if the subtree under
                    // `done.v` cannot reach above `p`.
                    if parent_frame.parent != usize::MAX && low[done.v] >= disc[p] {
                        is_cut[p] = true;
                    }
                } else {
                    // `done` is the root: cut vertex iff it has >= 2 DFS children.
                    if done.child_count >= 2 {
                        is_cut[done.v] = true;
                    }
                }
            }
        }
    }
    (0..n).filter(|&v| is_cut[v]).map(NodeId::new).collect()
}

/// Maximum number of internally vertex-disjoint `s`–`t` paths (Menger's
/// theorem: equal to the minimum `s`–`t` vertex cut when `s` and `t` are not
/// adjacent).
///
/// Computed by unit-capacity augmenting paths on the standard vertex-split
/// flow network (each vertex other than `s` and `t` is split into an
/// in-copy and an out-copy joined by a capacity-1 arc). The running time is
/// `O(connectivity * (n + m))`, which is what the adversarial fault
/// generators and the verification tests need on their small instances.
///
/// If `s` and `t` are adjacent, the direct edge contributes one path (with no
/// internal vertices).
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if either endpoint is out of
/// bounds, and [`GraphError::InvalidParameter`] if `s == t`.
pub fn local_vertex_connectivity(graph: &Graph, s: NodeId, t: NodeId) -> Result<usize> {
    let n = graph.node_count();
    for x in [s, t] {
        if x.index() >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: x.index(),
                len: n,
            });
        }
    }
    if s == t {
        return Err(GraphError::InvalidParameter {
            message: "local vertex connectivity requires two distinct vertices".to_string(),
        });
    }

    // Vertex-split flow network over node indices:
    //   in-copy of v  = 2v,  out-copy of v = 2v + 1.
    // Arcs: in(v) -> out(v) with capacity 1 (capacity infinity for s, t);
    // for every edge {u, v}: out(u) -> in(v) and out(v) -> in(u), capacity 1.
    // All capacities are 0/1, stored in an adjacency map.
    use std::collections::HashMap;
    let node_in = |v: usize| 2 * v;
    let node_out = |v: usize| 2 * v + 1;
    let mut cap: HashMap<(usize, usize), u32> = HashMap::new();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
    let add_arc = |cap_map: &mut HashMap<(usize, usize), u32>,
                   adj: &mut Vec<Vec<usize>>,
                   a: usize,
                   b: usize,
                   c: u32| {
        let entry = cap_map.entry((a, b)).or_insert(0);
        *entry = entry.saturating_add(c);
        cap_map.entry((b, a)).or_insert(0);
        if !adj[a].contains(&b) {
            adj[a].push(b);
        }
        if !adj[b].contains(&a) {
            adj[b].push(a);
        }
    };

    let big = graph.node_count() as u32 + 1;
    for v in 0..n {
        let c = if v == s.index() || v == t.index() {
            big
        } else {
            1
        };
        add_arc(&mut cap, &mut adj, node_in(v), node_out(v), c);
    }
    for (_, e) in graph.edges() {
        add_arc(
            &mut cap,
            &mut adj,
            node_out(e.u.index()),
            node_in(e.v.index()),
            1,
        );
        add_arc(
            &mut cap,
            &mut adj,
            node_out(e.v.index()),
            node_in(e.u.index()),
            1,
        );
    }

    let source = node_out(s.index());
    let sink = node_in(t.index());
    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path in the residual network.
        let mut pred = vec![usize::MAX; 2 * n];
        let mut queue = std::collections::VecDeque::new();
        pred[source] = source;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            if v == sink {
                break;
            }
            for &u in &adj[v] {
                if pred[u] == usize::MAX && cap.get(&(v, u)).copied().unwrap_or(0) > 0 {
                    pred[u] = v;
                    queue.push_back(u);
                }
            }
        }
        if pred[sink] == usize::MAX {
            break;
        }
        // Augment by one unit along the path.
        let mut v = sink;
        while v != source {
            let p = pred[v];
            *cap.get_mut(&(p, v))
                .expect("arc exists on the augmenting path") -= 1;
            *cap.get_mut(&(v, p))
                .expect("reverse arc was created with the arc") += 1;
            v = p;
        }
        flow += 1;
        // The connectivity can never exceed n, so this terminates.
        if flow > n {
            break;
        }
    }
    Ok(flow)
}

/// The vertex connectivity of `graph`: the minimum number of vertices whose
/// removal disconnects it (or `n - 1` for a complete graph).
///
/// Computed as the minimum of [`local_vertex_connectivity`] over a standard
/// set of vertex pairs: a fixed vertex `s` against every non-neighbor, and
/// every pair of non-adjacent neighbors of `s`. Intended for the small
/// instances used by tests and experiment setup; the cost is
/// `O(n)` max-flow computations.
///
/// Returns 0 for disconnected (or single-vertex / empty) graphs.
pub fn vertex_connectivity(graph: &Graph) -> usize {
    let n = graph.node_count();
    if n <= 1 || !graph.is_connected() {
        return 0;
    }
    if graph.edge_count() == n * (n - 1) / 2 {
        return n - 1;
    }
    // Choose s as a vertex of minimum degree: its degree is an upper bound.
    let s = graph
        .nodes()
        .min_by_key(|&v| graph.degree(v))
        .expect("graph has at least two vertices");
    let mut best = graph.degree(s);
    let s_neighbors: Vec<NodeId> = graph.neighbors(s).collect();
    for t in graph.nodes() {
        if t == s || graph.has_edge(s, t) {
            continue;
        }
        let c = local_vertex_connectivity(graph, s, t).expect("both endpoints come from the graph");
        best = best.min(c);
    }
    // Pairs of neighbors of s that are not adjacent to each other.
    for (i, &a) in s_neighbors.iter().enumerate() {
        for &b in s_neighbors.iter().skip(i + 1) {
            if !graph.has_edge(a, b) {
                let c = local_vertex_connectivity(graph, a, b)
                    .expect("both endpoints come from the graph");
                best = best.min(c);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.len(), 6);
        assert!(!uf.is_empty());
        assert_eq!(uf.set_count(), 6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 4);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert!(UnionFind::new(0).is_empty());
    }

    #[test]
    fn union_find_find_is_idempotent() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..10 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_unit_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert!(cc.same_component(NodeId::new(0), NodeId::new(2)));
        assert!(!cc.same_component(NodeId::new(0), NodeId::new(3)));
        assert_eq!(cc.largest(), 3);
        let sizes = cc.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        let members = cc.members(cc.label(NodeId::new(3)));
        assert_eq!(members.len(), 2);
        assert!(members.contains(&NodeId::new(4)));
    }

    #[test]
    fn components_of_empty_graph() {
        let cc = connected_components(&Graph::new(0));
        assert_eq!(cc.count(), 0);
        assert_eq!(cc.largest(), 0);
        let isolated = connected_components(&Graph::new(4));
        assert_eq!(isolated.count(), 4);
    }

    #[test]
    fn path_graph_interior_vertices_are_articulation_points() {
        let g = generate::path(5);
        let cuts = articulation_points(&g);
        assert_eq!(cuts, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn cycle_and_complete_graphs_have_no_articulation_points() {
        assert!(articulation_points(&generate::cycle(8)).is_empty());
        assert!(articulation_points(&generate::complete(6)).is_empty());
    }

    #[test]
    fn barbell_center_is_an_articulation_point() {
        // Two triangles joined through vertex 2 (= vertex 3 merged): build
        // explicitly — triangle {0,1,2} and triangle {2,3,4}.
        let g =
            Graph::from_unit_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let cuts = articulation_points(&g);
        assert_eq!(cuts, vec![NodeId::new(2)]);
    }

    #[test]
    fn articulation_points_of_disconnected_graph() {
        let g =
            Graph::from_unit_edges(7, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3), (5, 6)]).unwrap();
        let cuts = articulation_points(&g);
        assert!(cuts.contains(&NodeId::new(1)));
        assert!(cuts.contains(&NodeId::new(5)));
        assert_eq!(cuts.len(), 2);
    }

    #[test]
    fn local_connectivity_on_cycle_is_two() {
        let g = generate::cycle(7);
        let c = local_vertex_connectivity(&g, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(c, 2);
    }

    #[test]
    fn local_connectivity_counts_the_direct_edge() {
        let g = generate::complete(5);
        // Adjacent vertices in K5: 1 direct edge + 3 internally disjoint
        // two-hop paths.
        let c = local_vertex_connectivity(&g, NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(c, 4);
    }

    #[test]
    fn local_connectivity_through_a_single_cut_vertex_is_one() {
        let g =
            Graph::from_unit_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let c = local_vertex_connectivity(&g, NodeId::new(0), NodeId::new(4)).unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn local_connectivity_validates_arguments() {
        let g = generate::cycle(4);
        assert!(local_vertex_connectivity(&g, NodeId::new(0), NodeId::new(9)).is_err());
        assert!(local_vertex_connectivity(&g, NodeId::new(1), NodeId::new(1)).is_err());
    }

    #[test]
    fn vertex_connectivity_of_standard_graphs() {
        assert_eq!(vertex_connectivity(&generate::path(6)), 1);
        assert_eq!(vertex_connectivity(&generate::cycle(6)), 2);
        assert_eq!(vertex_connectivity(&generate::complete(5)), 4);
        assert_eq!(vertex_connectivity(&generate::complete_bipartite(3, 5)), 3);
        assert_eq!(vertex_connectivity(&generate::hypercube(3)), 3);
        // Disconnected and trivial graphs.
        assert_eq!(vertex_connectivity(&Graph::new(1)), 0);
        assert_eq!(
            vertex_connectivity(&Graph::from_unit_edges(4, [(0, 1), (2, 3)]).unwrap()),
            0
        );
    }

    #[test]
    fn vertex_connectivity_matches_articulation_points() {
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generate::connected_gnp(16, 0.2, generate::WeightKind::Unit, &mut rng);
            let kappa = vertex_connectivity(&g);
            let has_cut_vertex = !articulation_points(&g).is_empty();
            if has_cut_vertex {
                assert_eq!(
                    kappa, 1,
                    "graph with an articulation point has connectivity 1"
                );
            } else {
                assert!(kappa >= 2, "biconnected graph must have connectivity >= 2");
            }
        }
    }

    #[test]
    fn component_labels_are_dense() {
        let g = Graph::from_unit_edges(5, [(4, 3)]).unwrap();
        let cc = connected_components(&g);
        for v in g.nodes() {
            assert!(cc.label(v) < cc.count());
        }
    }
}
