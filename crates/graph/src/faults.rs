//! Fault sets: enumeration, sampling and adversarial heuristics.
//!
//! An `r`-fault-tolerant `k`-spanner must remain a `k`-spanner of `G \ F` for
//! *every* vertex set `F` with `|F| <= r`. Verification therefore needs to
//! enumerate (for small instances) or sample (for larger ones) fault sets;
//! the types here provide both, plus the adversarial "midpoint" fault sets
//! that witness violations of the Lemma 3.1 characterization for 2-spanners.

use crate::components::articulation_points;
use crate::{DiGraph, EdgeId, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A set of failed vertices, stored sorted and deduplicated.
///
/// # Example
///
/// ```
/// use ftspan_graph::{faults::FaultSet, NodeId};
///
/// let f = FaultSet::from_nodes(vec![NodeId::new(3), NodeId::new(1), NodeId::new(3)]);
/// assert_eq!(f.len(), 2);
/// assert!(f.contains(NodeId::new(1)));
/// let mask = f.to_dead_mask(5);
/// assert_eq!(mask, vec![false, true, false, true, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FaultSet {
    nodes: Vec<NodeId>,
}

impl FaultSet {
    /// The empty fault set.
    pub fn empty() -> Self {
        FaultSet { nodes: Vec::new() }
    }

    /// Builds a fault set from arbitrary vertex ids (sorted, deduplicated).
    pub fn from_nodes(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        FaultSet { nodes }
    }

    /// Builds a fault set from raw indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        Self::from_nodes(indices.into_iter().map(NodeId::new).collect())
    }

    /// Number of failed vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no vertex failed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `v` is in the fault set.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// The failed vertices in increasing order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Converts the fault set into a boolean "dead" mask of length `n`,
    /// suitable for [`SsspOptions::forbid_vertices`](crate::shortest_path::SsspOptions::forbid_vertices).
    pub fn to_dead_mask(&self, n: usize) -> Vec<bool> {
        let mut mask = vec![false; n];
        for &v in &self.nodes {
            if v.index() < n {
                mask[v.index()] = true;
            }
        }
        mask
    }
}

impl FromIterator<NodeId> for FaultSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Self::from_nodes(iter.into_iter().collect())
    }
}

/// Iterator over all `k`-subsets of `0..n`, in lexicographic order.
///
/// Used by exhaustive fault-tolerance verification on small instances.
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    current: Option<Vec<usize>>,
}

impl Combinations {
    /// Creates an iterator over the `k`-subsets of `{0, .., n-1}`.
    pub fn new(n: usize, k: usize) -> Self {
        let current = if k <= n { Some((0..k).collect()) } else { None };
        Combinations { n, k, current }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.current.clone()?;
        // Advance to the next combination.
        let mut next = current.clone();
        let mut i = self.k;
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            if next[i] < self.n - (self.k - i) {
                next[i] += 1;
                for j in (i + 1)..self.k {
                    next[j] = next[j - 1] + 1;
                }
                self.current = Some(next);
                break;
            }
        }
        Some(current)
    }
}

/// Enumerates every fault set of size at most `r` over `n` vertices
/// (including the empty set), in order of increasing size.
///
/// The number of sets is `sum_{i=0}^{r} C(n, i)`; callers are expected to use
/// this only for small `n` and `r` (exhaustive verification in tests).
pub fn enumerate_fault_sets(n: usize, r: usize) -> impl Iterator<Item = FaultSet> {
    (0..=r.min(n)).flat_map(move |k| Combinations::new(n, k).map(FaultSet::from_indices))
}

/// Number of fault sets [`enumerate_fault_sets`] would yield.
pub fn count_fault_sets(n: usize, r: usize) -> u128 {
    let mut total: u128 = 0;
    for k in 0..=r.min(n) {
        let mut c: u128 = 1;
        for i in 0..k {
            c = c * (n - i) as u128 / (i + 1) as u128;
        }
        total += c;
    }
    total
}

/// Samples a uniformly random fault set of size exactly `min(r, n)`.
pub fn sample_fault_set<R: Rng + ?Sized>(n: usize, r: usize, rng: &mut R) -> FaultSet {
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    FaultSet::from_indices(all.into_iter().take(r.min(n)))
}

/// Samples `count` independent random fault sets of size `min(r, n)`.
pub fn sample_fault_sets<R: Rng + ?Sized>(
    n: usize,
    r: usize,
    count: usize,
    rng: &mut R,
) -> Vec<FaultSet> {
    (0..count).map(|_| sample_fault_set(n, r, rng)).collect()
}

/// For a directed graph and an arc `(u, v)`, returns the adversarial fault
/// set consisting of up to `r` midpoints of length-2 paths from `u` to `v`.
///
/// This is exactly the witness used in the proof of Lemma 3.1: if a spanner
/// omits `(u, v)` and has at most `r` two-paths, failing all their midpoints
/// disconnects the pair.
pub fn midpoint_faults(graph: &DiGraph, u: NodeId, v: NodeId, r: usize) -> FaultSet {
    FaultSet::from_nodes(graph.two_path_midpoints(u, v).take(r).collect())
}

/// Greedy adversarial fault heuristic for undirected graphs: repeatedly fail
/// the highest-degree surviving vertex.
///
/// High-degree vertices are the most likely to be essential intermediate
/// hops, so this is a useful stress test when exhaustive enumeration is out
/// of reach.
pub fn high_degree_faults(graph: &crate::Graph, r: usize) -> FaultSet {
    let mut degrees: Vec<(usize, usize)> = graph
        .nodes()
        .map(|v| (graph.degree(v), v.index()))
        .collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    FaultSet::from_indices(degrees.into_iter().take(r).map(|(_, v)| v))
}

/// Adversarial fault heuristic targeting the connectivity structure:
/// articulation points first (each one is a single fault that disconnects
/// the graph), then highest-degree vertices to fill up to `r` faults.
///
/// If the graph has an articulation point and `r >= 1`, the returned fault
/// set is guaranteed to disconnect the graph — the strongest possible stress
/// test for a fault-tolerant spanner verifier (both the spanner and the
/// input lose the connection, so the stretch bound must still be judged
/// against distances in `G \ F`).
pub fn articulation_faults(graph: &crate::Graph, r: usize) -> FaultSet {
    let mut picked: Vec<usize> = articulation_points(graph)
        .into_iter()
        .take(r)
        .map(NodeId::index)
        .collect();
    if picked.len() < r {
        let already: std::collections::HashSet<usize> = picked.iter().copied().collect();
        let mut degrees: Vec<(usize, usize)> = graph
            .nodes()
            .filter(|v| !already.contains(&v.index()))
            .map(|v| (graph.degree(v), v.index()))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        picked.extend(degrees.into_iter().take(r - picked.len()).map(|(_, v)| v));
    }
    FaultSet::from_indices(picked)
}

/// A set of failed *edges*, stored sorted and deduplicated.
///
/// Edge faults are the natural companion model to the paper's vertex faults:
/// an `r`-edge-fault-tolerant `k`-spanner must remain a `k`-spanner of
/// `G \ F` for every edge set `F` with `|F| <= r`. The conversion theorem
/// adapts to this model by sampling edges instead of vertices (see
/// `ftspan-core::edge_faults`), and the verifiers in
/// [`crate::verify`] accept [`EdgeFaultSet`]s directly.
///
/// # Example
///
/// ```
/// use ftspan_graph::{faults::EdgeFaultSet, EdgeId};
///
/// let f = EdgeFaultSet::from_indices([4, 0, 4]);
/// assert_eq!(f.len(), 2);
/// assert!(f.contains(EdgeId::new(0)));
/// assert!(!f.contains(EdgeId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct EdgeFaultSet {
    edges: Vec<EdgeId>,
}

impl EdgeFaultSet {
    /// The empty edge-fault set.
    pub fn empty() -> Self {
        EdgeFaultSet { edges: Vec::new() }
    }

    /// Builds an edge-fault set from arbitrary edge ids (sorted, deduplicated).
    pub fn from_edges(mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        EdgeFaultSet { edges }
    }

    /// Builds an edge-fault set from raw indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        Self::from_edges(indices.into_iter().map(EdgeId::new).collect())
    }

    /// Number of failed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edge failed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` if `e` is in the fault set.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// The failed edges in increasing order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Converts the fault set into a boolean "dead edge" mask of length `m`,
    /// suitable for the masked traversals of
    /// [`CsrSubgraph`](crate::csr::CsrSubgraph).
    pub fn to_dead_mask(&self, m: usize) -> Vec<bool> {
        let mut mask = vec![false; m];
        for &e in &self.edges {
            if e.index() < m {
                mask[e.index()] = true;
            }
        }
        mask
    }

    /// Removes the failed edges from `set`, returning the surviving subset.
    ///
    /// Typically `set` is either a graph's full edge set (to get the edges of
    /// `G \ F`) or a candidate spanner (to get `H \ F`).
    pub fn remove_from(&self, set: &crate::EdgeSet) -> crate::EdgeSet {
        let mut out = set.clone();
        for &e in &self.edges {
            if e.index() < out.capacity() {
                out.remove(e);
            }
        }
        out
    }
}

impl FromIterator<EdgeId> for EdgeFaultSet {
    fn from_iter<T: IntoIterator<Item = EdgeId>>(iter: T) -> Self {
        Self::from_edges(iter.into_iter().collect())
    }
}

/// Enumerates every edge-fault set of size at most `r` over `m` edges
/// (including the empty set), in order of increasing size.
pub fn enumerate_edge_fault_sets(m: usize, r: usize) -> impl Iterator<Item = EdgeFaultSet> {
    (0..=r.min(m)).flat_map(move |k| Combinations::new(m, k).map(EdgeFaultSet::from_indices))
}

/// Samples a uniformly random edge-fault set of size exactly `min(r, m)`.
pub fn sample_edge_fault_set<R: Rng + ?Sized>(m: usize, r: usize, rng: &mut R) -> EdgeFaultSet {
    let mut all: Vec<usize> = (0..m).collect();
    all.shuffle(rng);
    EdgeFaultSet::from_indices(all.into_iter().take(r.min(m)))
}

/// Adversarial edge-fault heuristic: fail the `r` heaviest edges of the
/// graph (the ones whose loss forces the longest detours in a weighted
/// instance).
pub fn heavy_edge_faults(graph: &crate::Graph, r: usize) -> EdgeFaultSet {
    let mut by_weight: Vec<(EdgeId, f64)> = graph.edges().map(|(id, e)| (id, e.weight)).collect();
    by_weight.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    EdgeFaultSet::from_edges(by_weight.into_iter().take(r).map(|(id, _)| id).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fault_set_dedups_and_sorts() {
        let f = FaultSet::from_indices([5, 1, 5, 3]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.nodes(), &[NodeId::new(1), NodeId::new(3), NodeId::new(5)]);
        assert!(f.contains(NodeId::new(3)));
        assert!(!f.contains(NodeId::new(2)));
        assert!(FaultSet::empty().is_empty());
    }

    #[test]
    fn dead_mask_ignores_out_of_range() {
        let f = FaultSet::from_indices([1, 9]);
        let mask = f.to_dead_mask(4);
        assert_eq!(mask, vec![false, true, false, false]);
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(Combinations::new(5, 2).count(), 10);
        assert_eq!(Combinations::new(5, 0).count(), 1);
        assert_eq!(Combinations::new(5, 5).count(), 1);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        let all: Vec<_> = Combinations::new(4, 2).collect();
        assert_eq!(all[0], vec![0, 1]);
        assert_eq!(all[5], vec![2, 3]);
    }

    #[test]
    fn enumerate_and_count_agree() {
        for (n, r) in [(5, 0), (5, 2), (6, 3), (4, 4)] {
            let enumerated = enumerate_fault_sets(n, r).count() as u128;
            assert_eq!(enumerated, count_fault_sets(n, r), "n={n} r={r}");
        }
        assert_eq!(count_fault_sets(5, 2), 1 + 5 + 10);
    }

    #[test]
    fn enumerated_sets_are_unique_and_bounded() {
        let sets: Vec<_> = enumerate_fault_sets(6, 2).collect();
        let unique: std::collections::HashSet<_> = sets.iter().cloned().collect();
        assert_eq!(unique.len(), sets.len());
        assert!(sets.iter().all(|f| f.len() <= 2));
    }

    #[test]
    fn sampling_respects_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let f = sample_fault_set(10, 3, &mut rng);
        assert_eq!(f.len(), 3);
        let g = sample_fault_set(2, 5, &mut rng);
        assert_eq!(g.len(), 2);
        let many = sample_fault_sets(10, 2, 7, &mut rng);
        assert_eq!(many.len(), 7);
    }

    #[test]
    fn midpoint_faults_hit_two_paths() {
        let g = generate::gap_gadget(3, 10.0).unwrap();
        let f = midpoint_faults(&g, NodeId::new(0), NodeId::new(1), 3);
        assert_eq!(f.len(), 3);
        for &w in f.nodes() {
            assert!(w.index() >= 2);
        }
        let f2 = midpoint_faults(&g, NodeId::new(0), NodeId::new(1), 2);
        assert_eq!(f2.len(), 2);
    }

    #[test]
    fn high_degree_faults_pick_hubs() {
        let g = generate::complete_bipartite(2, 6);
        // The two left vertices have degree 6, all others degree 2.
        let f = high_degree_faults(&g, 2);
        assert!(f.contains(NodeId::new(0)));
        assert!(f.contains(NodeId::new(1)));
    }

    #[test]
    fn articulation_faults_target_cut_vertices() {
        let g = generate::barbell(4);
        let f = articulation_faults(&g, 1);
        assert_eq!(f.len(), 1);
        let v = f.nodes()[0];
        assert!(v == NodeId::new(3) || v == NodeId::new(4));
        // On a biconnected graph the heuristic falls back to high degree.
        let c = generate::cycle(6);
        let f2 = articulation_faults(&c, 2);
        assert_eq!(f2.len(), 2);
        // Requesting more faults than articulation points fills up.
        let p = generate::path(4);
        let f3 = articulation_faults(&p, 3);
        assert_eq!(f3.len(), 3);
        assert!(f3.contains(NodeId::new(1)) && f3.contains(NodeId::new(2)));
    }

    #[test]
    fn edge_fault_set_basics() {
        let f = EdgeFaultSet::from_indices([7, 2, 7, 0]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.edges(), &[EdgeId::new(0), EdgeId::new(2), EdgeId::new(7)]);
        assert!(f.contains(EdgeId::new(2)));
        assert!(!f.contains(EdgeId::new(3)));
        assert!(EdgeFaultSet::empty().is_empty());
        let collected: EdgeFaultSet = [EdgeId::new(1), EdgeId::new(1)].into_iter().collect();
        assert_eq!(collected.len(), 1);
    }

    #[test]
    fn edge_fault_set_removes_from_edge_sets() {
        let g = generate::path(5);
        let full = g.full_edge_set();
        let f = EdgeFaultSet::from_indices([1, 3, 99]);
        let survived = f.remove_from(&full);
        assert_eq!(survived.len(), 2);
        assert!(survived.contains(EdgeId::new(0)));
        assert!(!survived.contains(EdgeId::new(1)));
    }

    #[test]
    fn enumerate_edge_fault_sets_counts() {
        let sets: Vec<_> = enumerate_edge_fault_sets(5, 2).collect();
        assert_eq!(sets.len() as u128, count_fault_sets(5, 2));
        let unique: std::collections::HashSet<_> = sets.iter().cloned().collect();
        assert_eq!(unique.len(), sets.len());
    }

    #[test]
    fn sample_edge_fault_set_respects_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(sample_edge_fault_set(10, 4, &mut rng).len(), 4);
        assert_eq!(sample_edge_fault_set(3, 9, &mut rng).len(), 3);
    }

    #[test]
    fn heavy_edge_faults_pick_heaviest() {
        let g = crate::Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 9.0), (2, 3, 5.0)]).unwrap();
        let f = heavy_edge_faults(&g, 2);
        assert_eq!(f.len(), 2);
        assert!(f.contains(EdgeId::new(1)));
        assert!(f.contains(EdgeId::new(2)));
        assert!(!f.contains(EdgeId::new(0)));
    }
}
