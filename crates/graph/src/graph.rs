//! Undirected weighted graphs.

use crate::{EdgeId, EdgeSet, GraphError, NodeId, Result};

/// An undirected edge with a non-negative length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint (the smaller index by construction).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Length of the edge (`>= 0`, finite).
    pub weight: f64,
}

impl Edge {
    /// Returns the endpoint of the edge that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x:?} is not an endpoint of edge {self:?}");
        }
    }

    /// Returns `true` if `x` is an endpoint of this edge.
    pub fn is_incident(&self, x: NodeId) -> bool {
        x == self.u || x == self.v
    }
}

/// An undirected graph with non-negative edge lengths.
///
/// Vertices are dense indices `0..n`; edges are stored once in an edge list
/// indexed by [`EdgeId`] and mirrored in per-vertex adjacency lists. The graph
/// is simple: no self-loops, and parallel edges are rejected by
/// [`Graph::add_edge`].
///
/// This is the input type of the conversion theorem (Theorem 2.1 of the
/// paper) and of all classic spanner constructions in `ftspan-spanners`.
///
/// # Example
///
/// ```
/// use ftspan_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 1.0)?;
/// g.add_edge(NodeId::new(1), NodeId::new(2), 2.0)?;
/// g.add_edge(NodeId::new(2), NodeId::new(3), 1.0)?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    edges: Vec<Edge>,
    /// adjacency: for each vertex, (neighbor, edge id), kept sorted by
    /// neighbor so [`Graph::find_edge`] can binary-search instead of
    /// scanning linearly (the oracle-heavy paths call it in tight loops).
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` vertices from an iterator of
    /// `(u, v, weight)` triples.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of bounds, any weight is
    /// negative or not finite, any edge is a self-loop, or an edge appears
    /// twice.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut g = Graph::new(n);
        for (u, v, w) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), w)?;
        }
        Ok(g)
    }

    /// Creates a unit-weight graph with `n` vertices from `(u, v)` pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::from_edges`].
    pub fn from_unit_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        Self::from_edges(n, edges.into_iter().map(|(u, v)| (u, v, 1.0)))
    }

    /// Creates a graph with `n` vertices from edges sorted lexicographically
    /// by normalized endpoint pair `(min(u, v), max(u, v))`.
    ///
    /// Bulk loading through [`Graph::add_edge`] pays a binary search plus a
    /// `Vec::insert` shift per edge, which degrades towards quadratic on
    /// dense vertices. When the input arrives in sorted order every adjacency
    /// list can be built with pure appends: vertex `x` first receives its
    /// smaller neighbors (from edges `(a, x)` with `a` ascending) and then
    /// its larger neighbors (from edges `(x, b)` with `b` ascending), so the
    /// lists come out sorted by construction in `O(n + m)` total.
    ///
    /// Edge identifiers are assigned in input order, exactly as if the edges
    /// had been added one by one.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if any endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if any edge is a self-loop.
    /// * [`GraphError::InvalidWeight`] if any weight is negative or not
    ///   finite.
    /// * [`GraphError::InvalidParameter`] if the normalized pairs are not
    ///   strictly increasing (out of order, or a duplicate edge).
    pub fn from_sorted_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut g = Graph::new(n);
        let mut prev: Option<(usize, usize)> = None;
        for (u, v, weight) in edges {
            for x in [u, v] {
                if x >= n {
                    return Err(GraphError::NodeOutOfBounds { node: x, len: n });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            if !(weight.is_finite() && weight >= 0.0) {
                return Err(GraphError::InvalidWeight { weight });
            }
            let (a, b) = (u.min(v), u.max(v));
            if let Some(p) = prev {
                if (a, b) <= p {
                    return Err(GraphError::InvalidParameter {
                        message: format!(
                            "edge ({a}, {b}) is not strictly after ({}, {}); \
                             from_sorted_edges requires strictly increasing \
                             normalized pairs",
                            p.0, p.1
                        ),
                    });
                }
            }
            prev = Some((a, b));
            let id = EdgeId::new(g.edges.len());
            g.edges.push(Edge {
                u: NodeId::new(a),
                v: NodeId::new(b),
                weight,
            });
            g.adj[a].push((NodeId::new(b), id));
            g.adj[b].push((NodeId::new(a), id));
        }
        Ok(g)
    }

    /// Builds a graph from pre-validated edges whose position in `edges` is
    /// their [`EdgeId`]. Endpoints must be normalized (`u <= v`), in bounds,
    /// loop-free, with finite non-negative weights — callers (the CSR
    /// reconstruction path) have already checked this. Adjacency lists are
    /// appended then sorted, which also surfaces parallel edges.
    pub(crate) fn from_indexed_edges(n: usize, edges: Vec<Edge>) -> Result<Self> {
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            adj[e.u.index()].push((e.v, EdgeId::new(i)));
            adj[e.v.index()].push((e.u, EdgeId::new(i)));
        }
        for (v, list) in adj.iter_mut().enumerate() {
            list.sort_unstable_by_key(|&(nbr, _)| nbr);
            if list.windows(2).any(|w| w[0].0 == w[1].0) {
                return Err(GraphError::InvalidParameter {
                    message: format!("vertex {v} has parallel edges"),
                });
            }
        }
        Ok(Graph { edges, adj })
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over all vertex identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over `(EdgeId, &Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), e))
    }

    /// Returns the edge with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Returns the edge with the given identifier, or `None` if out of bounds.
    pub fn get_edge(&self, e: EdgeId) -> Option<&Edge> {
        self.edges.get(e.index())
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Adds an undirected edge of length `weight` between `u` and `v`.
    ///
    /// Returns the identifier of the new edge.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::InvalidWeight`] if `weight` is negative or not finite.
    /// * [`GraphError::InvalidParameter`] if the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<EdgeId> {
        let n = self.node_count();
        for x in [u, v] {
            if x.index() >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: x.index(),
                    len: n,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u.index() });
        }
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(GraphError::InvalidWeight { weight });
        }
        let u_slot = match self.adj[u.index()].binary_search_by_key(&v, |&(nbr, _)| nbr) {
            Ok(_) => {
                return Err(GraphError::InvalidParameter {
                    message: format!("edge ({}, {}) already exists", u, v),
                })
            }
            Err(slot) => slot,
        };
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { u: a, v: b, weight });
        // Sorted insertion keeps every adjacency list binary-searchable; the
        // shift is bounded by the endpoint's degree, so building a graph stays
        // cheap (O(deg) worst case per edge, near-append for bulk loads whose
        // neighbors arrive roughly in order).
        self.adj[u.index()].insert(u_slot, (v, id));
        let v_slot = self.adj[v.index()]
            .binary_search_by_key(&u, |&(nbr, _)| nbr)
            .unwrap_err();
        self.adj[v.index()].insert(v_slot, (u, id));
        Ok(id)
    }

    /// Returns the identifier of the edge between `u` and `v`, if present.
    ///
    /// Binary search over the smaller endpoint's sorted adjacency list:
    /// `O(log min(deg u, deg v))`.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return None;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.adj[u.index()].len() <= self.adj[v.index()].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()]
            .binary_search_by_key(&b, |&(nbr, _)| nbr)
            .ok()
            .map(|slot| self.adj[a.index()][slot].1)
    }

    /// Returns `true` if an edge between `u` and `v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over the neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v.index()].iter().map(|&(nbr, _)| nbr)
    }

    /// Iterator over `(neighbor, edge id)` pairs incident to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn incident(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// Returns an [`EdgeSet`] containing every edge of this graph.
    pub fn full_edge_set(&self) -> EdgeSet {
        let mut s = EdgeSet::new(self.edge_count());
        for i in 0..self.edge_count() {
            s.insert(EdgeId::new(i));
        }
        s
    }

    /// Returns an empty [`EdgeSet`] sized for this graph.
    pub fn empty_edge_set(&self) -> EdgeSet {
        EdgeSet::new(self.edge_count())
    }

    /// Builds the subgraph induced by keeping only the edges in `edges` and
    /// only the vertices for which `alive` returns `true`.
    ///
    /// The returned graph has the same vertex set (dead vertices become
    /// isolated), which keeps vertex identifiers stable — this is what the
    /// fault-tolerance machinery relies on.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MismatchedEdgeSet`] if `edges` was built for a
    /// different edge count.
    pub fn restricted_subgraph<F>(&self, edges: &EdgeSet, alive: F) -> Result<Graph>
    where
        F: Fn(NodeId) -> bool,
    {
        if edges.capacity() != self.edge_count() {
            return Err(GraphError::MismatchedEdgeSet {
                set_len: edges.capacity(),
                graph_len: self.edge_count(),
            });
        }
        let mut g = Graph::new(self.node_count());
        for (id, e) in self.edges() {
            if edges.contains(id) && alive(e.u) && alive(e.v) {
                g.add_edge(e.u, e.v, e.weight)?;
            }
        }
        Ok(g)
    }

    /// Builds the subgraph of this graph that survives after removing the
    /// vertices in `faults` (vertex identifiers are preserved; removed
    /// vertices become isolated).
    pub fn remove_vertices(&self, faults: &[NodeId]) -> Graph {
        let mut dead = vec![false; self.node_count()];
        for &f in faults {
            if f.index() < dead.len() {
                dead[f.index()] = true;
            }
        }
        let full = self.full_edge_set();
        self.restricted_subgraph(&full, |v| !dead[v.index()])
            .expect("full edge set always matches the graph")
    }

    /// Materializes the spanner described by `edges` as a standalone graph on
    /// the same vertex set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MismatchedEdgeSet`] if `edges` was built for a
    /// different edge count.
    pub fn subgraph(&self, edges: &EdgeSet) -> Result<Graph> {
        self.restricted_subgraph(edges, |_| true)
    }

    /// Sum of the weights of the edges in `edges`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MismatchedEdgeSet`] if `edges` was built for a
    /// different edge count.
    pub fn edge_set_weight(&self, edges: &EdgeSet) -> Result<f64> {
        if edges.capacity() != self.edge_count() {
            return Err(GraphError::MismatchedEdgeSet {
                set_len: edges.capacity(),
                graph_len: self.edge_count(),
            });
        }
        Ok(edges.iter().map(|id| self.edge(id).weight).sum())
    }

    /// Returns `true` if every vertex can reach every other vertex.
    ///
    /// The empty graph and single-vertex graph are considered connected.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for u in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// Returns `true` if every edge has weight exactly 1.
    pub fn is_unit_weight(&self) -> bool {
        self.edges.iter().all(|e| e.weight == 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_unit_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn new_graph_is_empty() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_empty());
        assert!(Graph::new(0).is_empty());
    }

    #[test]
    fn add_edge_and_lookup() {
        let mut g = Graph::new(3);
        let e = g.add_edge(NodeId::new(2), NodeId::new(0), 2.5).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(e).weight, 2.5);
        // Stored with u <= v.
        assert_eq!(g.edge(e).u, NodeId::new(0));
        assert_eq!(g.edge(e).v, NodeId::new(2));
        assert_eq!(g.find_edge(NodeId::new(0), NodeId::new(2)), Some(e));
        assert_eq!(g.find_edge(NodeId::new(2), NodeId::new(0)), Some(e));
        assert!(g.find_edge(NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn add_edge_rejects_bad_input() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(NodeId::new(0), NodeId::new(5), 1.0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId::new(1), NodeId::new(1), 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId::new(0), NodeId::new(1), -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId::new(0), NodeId::new(1), f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0).unwrap();
        assert!(matches!(
            g.add_edge(NodeId::new(1), NodeId::new(0), 2.0),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path_graph(4);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.max_degree(), 2);
        let nbrs: Vec<_> = g.neighbors(NodeId::new(1)).collect();
        assert!(nbrs.contains(&NodeId::new(0)));
        assert!(nbrs.contains(&NodeId::new(2)));
    }

    #[test]
    fn edge_other_endpoint() {
        let g = path_graph(3);
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.other(NodeId::new(0)), NodeId::new(1));
        assert_eq!(e.other(NodeId::new(1)), NodeId::new(0));
        assert!(e.is_incident(NodeId::new(0)));
        assert!(!e.is_incident(NodeId::new(2)));
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        let g = path_graph(3);
        let (_, e) = g.edges().next().unwrap();
        let _ = e.other(NodeId::new(2));
    }

    #[test]
    fn remove_vertices_keeps_ids_stable() {
        let g = path_graph(5);
        let h = g.remove_vertices(&[NodeId::new(2)]);
        assert_eq!(h.node_count(), 5);
        assert_eq!(h.edge_count(), 2); // edges (0,1) and (3,4) survive
        assert!(h.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(h.has_edge(NodeId::new(3), NodeId::new(4)));
        assert!(!h.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn subgraph_from_edge_set() {
        let g = path_graph(4);
        let mut s = g.empty_edge_set();
        s.insert(EdgeId::new(0));
        s.insert(EdgeId::new(2));
        let h = g.subgraph(&s).unwrap();
        assert_eq!(h.edge_count(), 2);
        assert!(h.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!h.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn mismatched_edge_set_is_rejected() {
        let g = path_graph(4);
        let wrong = EdgeSet::new(99);
        assert!(matches!(
            g.subgraph(&wrong),
            Err(GraphError::MismatchedEdgeSet { .. })
        ));
        assert!(matches!(
            g.edge_set_weight(&wrong),
            Err(GraphError::MismatchedEdgeSet { .. })
        ));
    }

    #[test]
    fn connectivity() {
        let g = path_graph(6);
        assert!(g.is_connected());
        let h = g.remove_vertices(&[NodeId::new(3)]);
        assert!(!h.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn weights_and_unit_check() {
        let g = path_graph(4);
        assert!(g.is_unit_weight());
        assert_eq!(g.total_weight(), 3.0);
        let full = g.full_edge_set();
        assert_eq!(g.edge_set_weight(&full).unwrap(), 3.0);
        let mut g2 = Graph::new(2);
        g2.add_edge(NodeId::new(0), NodeId::new(1), 2.0).unwrap();
        assert!(!g2.is_unit_weight());
    }

    #[test]
    fn adjacency_is_sorted_and_lookup_matches_linear_scan() {
        // Insert edges in scrambled order; the per-vertex lists must stay
        // sorted (the invariant behind the binary-searched find_edge).
        let mut g = Graph::new(8);
        for (u, v) in [(0, 7), (0, 3), (0, 5), (0, 1), (3, 7), (2, 3), (3, 4)] {
            g.add_edge(NodeId::new(u), NodeId::new(v), 1.0).unwrap();
        }
        for v in g.nodes() {
            let nbrs: Vec<NodeId> = g.neighbors(v).collect();
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            assert_eq!(nbrs, sorted, "adjacency of {v} not sorted");
        }
        for u in 0..8 {
            for v in 0..8 {
                let expected = g
                    .edges()
                    .find(|(_, e)| (e.u.index(), e.v.index()) == (u.min(v), u.max(v)) && u != v)
                    .map(|(id, _)| id);
                assert_eq!(g.find_edge(NodeId::new(u), NodeId::new(v)), expected);
            }
        }
    }

    #[test]
    fn from_sorted_edges_matches_incremental_build() {
        let edges = [
            (0usize, 1usize, 1.5),
            (0, 3, 2.0),
            (1, 2, 0.5),
            (2, 3, 1.0),
            (2, 4, 3.0),
        ];
        let bulk = Graph::from_sorted_edges(5, edges).unwrap();
        let incremental = Graph::from_edges(5, edges).unwrap();
        assert_eq!(bulk, incremental);
        for v in bulk.nodes() {
            let nbrs: Vec<NodeId> = bulk.neighbors(v).collect();
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            assert_eq!(nbrs, sorted, "adjacency of {v} not sorted");
        }
        // Edge ids follow input order.
        assert_eq!(
            bulk.find_edge(NodeId::new(1), NodeId::new(2)),
            Some(EdgeId::new(2))
        );
    }

    #[test]
    fn from_sorted_edges_rejects_bad_input() {
        assert!(matches!(
            Graph::from_sorted_edges(3, [(0, 5, 1.0)]),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            Graph::from_sorted_edges(3, [(1, 1, 1.0)]),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            Graph::from_sorted_edges(3, [(0, 1, f64::NAN)]),
            Err(GraphError::InvalidWeight { .. })
        ));
        // Out of order.
        assert!(matches!(
            Graph::from_sorted_edges(3, [(1, 2, 1.0), (0, 1, 1.0)]),
            Err(GraphError::InvalidParameter { .. })
        ));
        // Duplicate (after normalization).
        assert!(matches!(
            Graph::from_sorted_edges(3, [(0, 1, 1.0), (1, 0, 2.0)]),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn full_and_empty_edge_sets() {
        let g = path_graph(5);
        assert_eq!(g.full_edge_set().len(), 4);
        assert_eq!(g.empty_edge_set().len(), 0);
    }
}
