//! Streaming, memory-bounded graph generators for million-node builds.
//!
//! The classic generators in [`generate`](crate::generate) materialize a
//! [`Graph`] edge by edge, which is fine at experiment scale but wasteful
//! when construction is pushed to `n = 10^5..10^6`: the builder's graph is
//! often packed into a CSR immediately and never touched again. The
//! [`GeneratorSpec`]s here describe a graph *by seed and parameters* and
//! emit edges directly into a [`CsrBuilder`], so peak memory is the
//! finished CSR plus `O(m)` transient state (for `G(n, m)`, one sorted
//! `u64` edge-index array — 8 bytes per edge).
//!
//! Everything is deterministic: the same spec always produces the same
//! graph, the same edge identifiers and the same weights, whether it is
//! materialized as a [`Graph`], a [`CsrSubgraph`], or both.
//!
//! # Example
//!
//! ```
//! use ftspan_graph::stream::GeneratorSpec;
//! use ftspan_graph::generate::WeightKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = GeneratorSpec::Gnm {
//!     nodes: 1000,
//!     edges: 4000,
//!     weights: WeightKind::Unit,
//!     seed: 7,
//! };
//! let csr = spec.generate_csr()?;
//! assert_eq!(csr.node_count(), 1000);
//! assert_eq!(csr.edge_count(), 4000);
//! # Ok(())
//! # }
//! ```

use crate::csr::{CsrBuilder, CsrSubgraph};
use crate::generate::WeightKind;
use crate::{Graph, GraphError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded description of a generated graph, evaluated lazily.
///
/// A spec is tiny and `Copy`; nothing is generated until one of
/// [`GeneratorSpec::generate`], [`GeneratorSpec::generate_csr`] or
/// [`GeneratorSpec::generate_with_csr`] runs. Both output forms agree
/// exactly: edge `i` of the `Graph` is edge `i` of the CSR, with the same
/// endpoints and weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneratorSpec {
    /// Erdős–Rényi `G(n, m)`: exactly `edges` distinct vertex pairs, chosen
    /// uniformly by sampling edge *indices* in `[0, n(n-1)/2)` — memory is
    /// `O(m)` regardless of `n`, unlike the `O(n^2)` pair sweep of
    /// [`generate::gnp`](crate::generate::gnp).
    Gnm {
        /// Number of vertices.
        nodes: usize,
        /// Number of edges (must be at most `n(n-1)/2`).
        edges: usize,
        /// Edge-weight distribution ([`WeightKind::Euclidean`] falls back
        /// to unit weights, as in the classic generators).
        weights: WeightKind,
        /// RNG seed; the spec is a pure function of its fields.
        seed: u64,
    },
    /// The `rows x cols` grid, optionally wrapped into a torus. Wrap edges
    /// are only added along dimensions of length at least 3 (shorter ones
    /// would duplicate existing edges).
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Also connect last column to first and last row to first.
        wrap: bool,
        /// Edge-weight distribution.
        weights: WeightKind,
        /// RNG seed (only consumed by non-unit weight kinds).
        seed: u64,
    },
    /// Preferential attachment (Barabási–Albert): a seed clique on
    /// `attach + 1` vertices, then each arriving vertex attaches to
    /// `attach` existing vertices chosen proportionally to degree. Unit
    /// weights.
    PreferentialAttachment {
        /// Number of vertices (must exceed `attach`).
        nodes: usize,
        /// Edges added per arriving vertex (must be positive).
        attach: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A road-network-like planar mesh: a `rows x cols` grid of points,
    /// each jittered away from its lattice position, connected by the grid
    /// backbone plus one random diagonal per cell with probability
    /// `diagonal_p`. Every edge weight is the Euclidean distance between
    /// the jittered endpoints, so the graph behaves like a street network:
    /// locally planar, near-uniform degree, metric weights.
    ///
    /// The grid backbone keeps the mesh connected for any seed.
    ///
    /// # Parameter constraints
    ///
    /// * `rows >= 2` and `cols >= 2` (the mesh needs at least one cell);
    /// * `diagonal_p` in `[0, 1]` and finite;
    /// * `jitter` in `[0, 0.5)` and finite — below `0.5`, neighboring
    ///   points cannot cross, so every edge weight stays strictly
    ///   positive.
    ///
    /// Violations are reported as [`GraphError::InvalidParameter`] by the
    /// generate calls.
    PlanarMesh {
        /// Number of point rows.
        rows: usize,
        /// Number of point columns.
        cols: usize,
        /// Probability that a cell gains one diagonal (main or anti,
        /// chosen uniformly).
        diagonal_p: f64,
        /// Maximum coordinate displacement from the lattice position,
        /// drawn uniformly from `[-jitter, jitter)` per axis.
        jitter: f64,
        /// RNG seed; positions, diagonals and therefore weights are a pure
        /// function of the spec.
        seed: u64,
    },
    /// A threshold hyperbolic random graph: `nodes` points placed in the
    /// hyperbolic disk of radius `radius` (angles uniform, radii with
    /// density proportional to `sinh(alpha * r)`), connected exactly when
    /// their hyperbolic distance is at most `radius`. Edge weights are the
    /// hyperbolic distances. This family produces the heavy-tailed degree
    /// sequences and tight clustering of internet-like topologies —
    /// structurally unlike both G(n, m) and meshes.
    ///
    /// # Parameter constraints
    ///
    /// * `nodes >= 2`;
    /// * `alpha > 0` and finite (larger pushes mass to the rim: sparser,
    ///   flatter degrees; `alpha = 1` is the uniform hyperbolic measure);
    /// * `radius > 0` and finite — degree falls as `radius` grows; around
    ///   `2 ln nodes` the graph sits at the sparse connectivity threshold.
    ///
    /// Generation sweeps all vertex pairs, so it costs `O(nodes^2)` time:
    /// the family is meant for adversarial batteries and benchmarks up to
    /// roughly `10^4` vertices, not the million-node streaming path.
    /// Connectivity is *not* guaranteed; callers that need a connected
    /// instance should check [`Graph::is_connected`] and pick seeds
    /// accordingly.
    ///
    /// Violations are reported as [`GraphError::InvalidParameter`] by the
    /// generate calls.
    Hyperbolic {
        /// Number of vertices.
        nodes: usize,
        /// Radial density exponent (`> 0`).
        alpha: f64,
        /// Disk radius and connection threshold (`> 0`).
        radius: f64,
        /// RNG seed; the point set and the edge set are a pure function of
        /// the spec.
        seed: u64,
    },
}

impl GeneratorSpec {
    /// Number of vertices the spec will generate.
    pub fn node_count(&self) -> usize {
        match *self {
            GeneratorSpec::Gnm { nodes, .. } => nodes,
            GeneratorSpec::Grid { rows, cols, .. } => rows * cols,
            GeneratorSpec::PreferentialAttachment { nodes, .. } => nodes,
            GeneratorSpec::PlanarMesh { rows, cols, .. } => rows * cols,
            GeneratorSpec::Hyperbolic { nodes, .. } => nodes,
        }
    }

    /// Exact number of edges, when it is a pure function of the parameters
    /// (`None` for preferential attachment, where degenerate urns can
    /// produce slightly fewer than `attach` targets).
    pub fn edge_count(&self) -> Option<usize> {
        match *self {
            GeneratorSpec::Gnm { edges, .. } => Some(edges),
            GeneratorSpec::Grid {
                rows, cols, wrap, ..
            } => {
                let mut m = 0usize;
                if rows > 0 && cols > 0 {
                    m += rows * (cols - 1) + cols * (rows - 1);
                    if wrap {
                        if cols >= 3 {
                            m += rows;
                        }
                        if rows >= 3 {
                            m += cols;
                        }
                    }
                }
                Some(m)
            }
            GeneratorSpec::PreferentialAttachment { .. } => None,
            // Diagonal and threshold edges depend on the seed.
            GeneratorSpec::PlanarMesh { .. } | GeneratorSpec::Hyperbolic { .. } => None,
        }
    }

    /// Generates the graph as a CSR, never materializing a [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for inconsistent parameters
    /// (for `G(n, m)`, more edges than vertex pairs; for preferential
    /// attachment, `attach == 0` or `nodes <= attach`).
    pub fn generate_csr(&self) -> Result<CsrSubgraph> {
        match *self {
            GeneratorSpec::Gnm {
                nodes,
                edges,
                weights,
                seed,
            } => generate_gnm(nodes, edges, weights, seed),
            GeneratorSpec::Grid {
                rows,
                cols,
                wrap,
                weights,
                seed,
            } => generate_grid(rows, cols, wrap, weights, seed),
            GeneratorSpec::PreferentialAttachment {
                nodes,
                attach,
                seed,
            } => generate_preferential(nodes, attach, seed),
            GeneratorSpec::PlanarMesh {
                rows,
                cols,
                diagonal_p,
                jitter,
                seed,
            } => generate_planar_mesh(rows, cols, diagonal_p, jitter, seed),
            GeneratorSpec::Hyperbolic {
                nodes,
                alpha,
                radius,
                seed,
            } => generate_hyperbolic(nodes, alpha, radius, seed),
        }
    }

    /// Generates the graph as a [`Graph`] (via the CSR, so both forms
    /// always agree).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GeneratorSpec::generate_csr`].
    pub fn generate(&self) -> Result<Graph> {
        self.generate_csr()?.to_graph()
    }

    /// Generates both forms from a single evaluation: the `Graph` is the
    /// CSR's reconstruction, so edge identifiers and weights match
    /// half-edge for half-edge.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GeneratorSpec::generate_csr`].
    pub fn generate_with_csr(&self) -> Result<(Graph, CsrSubgraph)> {
        let csr = self.generate_csr()?;
        let graph = csr.to_graph()?;
        Ok((graph, csr))
    }
}

/// Decodes sorted pair-indices `k in [0, n(n-1)/2)` into vertex pairs
/// `(u, v)` with `u < v`, in one forward sweep (indices sorted ascending
/// decode to pairs sorted lexicographically).
fn decode_sorted_pairs(n: usize, sorted: &[u64], mut emit: impl FnMut(usize, usize)) {
    let mut u = 0usize;
    // Row `u` holds the pairs (u, u+1..n): `row_len = n - 1 - u` of them,
    // starting at flat index `row_start`.
    let mut row_start = 0u64;
    let mut row_len = n.saturating_sub(1) as u64;
    for &k in sorted {
        while row_len > 0 && k >= row_start + row_len {
            row_start += row_len;
            row_len -= 1;
            u += 1;
        }
        let v = u + 1 + (k - row_start) as usize;
        emit(u, v);
    }
}

fn generate_gnm(n: usize, m: usize, weights: WeightKind, seed: u64) -> Result<CsrSubgraph> {
    let pairs = (n as u64).saturating_mul(n.saturating_sub(1) as u64) / 2;
    if (m as u64) > pairs {
        return Err(GraphError::InvalidParameter {
            message: format!("G(n, m) with n = {n} has only {pairs} vertex pairs, got m = {m}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Sample m distinct edge indices: oversample-and-dedup keeps memory at
    // one u64 per edge (collisions are rare for m well below the pair
    // count, and each round draws only the remaining deficit).
    let mut indices: Vec<u64> = Vec::with_capacity(m);
    while indices.len() < m {
        let deficit = m - indices.len();
        for _ in 0..deficit {
            indices.push(rng.gen_range(0..pairs));
        }
        indices.sort_unstable();
        indices.dedup();
    }
    let mut builder = CsrBuilder::new(n);
    let mut count_err = Ok(());
    decode_sorted_pairs(n, &indices, |u, v| {
        if count_err.is_ok() {
            count_err = builder.count_edge(u, v);
        }
    });
    count_err?;
    builder.begin_fill();
    // Weights are drawn in sorted-edge order, so they are a deterministic
    // function of (seed, parameters) alone.
    let mut fill_err = Ok(());
    decode_sorted_pairs(n, &indices, |u, v| {
        if fill_err.is_ok() {
            let w = match weights {
                WeightKind::Uniform { min, max } => rng.gen_range(min..max),
                WeightKind::Unit | WeightKind::Euclidean => 1.0,
            };
            fill_err = builder.push_edge(u, v, w);
        }
    });
    fill_err?;
    builder.finish()
}

fn generate_grid(
    rows: usize,
    cols: usize,
    wrap: bool,
    weights: WeightKind,
    seed: u64,
) -> Result<CsrSubgraph> {
    // Enumerate edges once per pass; the enumeration is deterministic so
    // the two passes agree edge for edge.
    fn sweep(
        rows: usize,
        cols: usize,
        wrap: bool,
        f: &mut dyn FnMut(usize, usize) -> Result<()>,
    ) -> Result<()> {
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    f(id(r, c), id(r, c + 1))?;
                }
                if wrap && cols >= 3 && c == 0 {
                    f(id(r, 0), id(r, cols - 1))?;
                }
                if r + 1 < rows {
                    f(id(r, c), id(r + 1, c))?;
                }
                if wrap && rows >= 3 && r == 0 {
                    f(id(0, c), id(rows - 1, c))?;
                }
            }
        }
        Ok(())
    }
    let mut builder = CsrBuilder::new(rows * cols);
    sweep(rows, cols, wrap, &mut |u, v| builder.count_edge(u, v))?;
    builder.begin_fill();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    sweep(rows, cols, wrap, &mut |u, v| {
        let w = match weights {
            WeightKind::Uniform { min, max } => rng.gen_range(min..max),
            WeightKind::Unit | WeightKind::Euclidean => 1.0,
        };
        builder.push_edge(u, v, w)
    })?;
    builder.finish()
}

fn generate_preferential(n: usize, attach: usize, seed: u64) -> Result<CsrSubgraph> {
    if attach == 0 {
        return Err(GraphError::InvalidParameter {
            message: "preferential attachment needs a positive attach count".into(),
        });
    }
    if n <= attach {
        return Err(GraphError::InvalidParameter {
            message: format!("preferential attachment needs nodes > attach, got {n} <= {attach}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // The attachment process needs the evolving degree urn, so edges are
    // buffered (O(m) tuples) instead of double-swept.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut urn: Vec<usize> = Vec::new();
    for u in 0..=attach {
        for v in (u + 1)..=attach {
            edges.push((u, v));
            urn.push(u);
            urn.push(v);
        }
    }
    let mut targets: Vec<usize> = Vec::with_capacity(attach);
    for v in (attach + 1)..n {
        targets.clear();
        let mut guard = 0;
        while targets.len() < attach && guard < 100 * attach {
            let t = urn[rng.gen_range(0..urn.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        // Ascending targets keep each vertex's attachment edges sorted,
        // which makes the emission deterministic and reproducible.
        targets.sort_unstable();
        for &t in &targets {
            edges.push((t, v));
            urn.push(v);
            urn.push(t);
        }
    }
    let mut builder = CsrBuilder::new(n);
    for &(u, v) in &edges {
        builder.count_edge(u, v)?;
    }
    builder.begin_fill();
    for &(u, v) in &edges {
        builder.push_edge(u, v, 1.0)?;
    }
    builder.finish()
}

/// Per-cell diagonal choice of the planar mesh.
const DIAG_NONE: u8 = 0;
const DIAG_MAIN: u8 = 1;
const DIAG_ANTI: u8 = 2;

fn generate_planar_mesh(
    rows: usize,
    cols: usize,
    diagonal_p: f64,
    jitter: f64,
    seed: u64,
) -> Result<CsrSubgraph> {
    if rows < 2 || cols < 2 {
        return Err(GraphError::InvalidParameter {
            message: format!("planar mesh needs rows >= 2 and cols >= 2, got {rows} x {cols}"),
        });
    }
    if !(diagonal_p.is_finite() && (0.0..=1.0).contains(&diagonal_p)) {
        return Err(GraphError::InvalidParameter {
            message: format!("planar mesh needs diagonal_p in [0, 1], got {diagonal_p}"),
        });
    }
    if !(jitter.is_finite() && (0.0..0.5).contains(&jitter)) {
        return Err(GraphError::InvalidParameter {
            message: format!("planar mesh needs jitter in [0, 0.5), got {jitter}"),
        });
    }
    let n = rows * cols;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Positions first (node order), then diagonal choices (cell order):
    // both are drawn once so the two builder sweeps agree edge for edge.
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|id| {
            let (r, c) = (id / cols, id % cols);
            let mut offset = || jitter * (2.0 * rng.gen_range(0.0..1.0) - 1.0);
            let (dx, dy) = (offset(), offset());
            (c as f64 + dx, r as f64 + dy)
        })
        .collect();
    let diagonals: Vec<u8> = (0..(rows - 1) * (cols - 1))
        .map(|_| {
            if rng.gen_range(0.0..1.0) < diagonal_p {
                if rng.gen_range(0..2u32) == 0 {
                    DIAG_MAIN
                } else {
                    DIAG_ANTI
                }
            } else {
                DIAG_NONE
            }
        })
        .collect();

    // Deterministic edge enumeration: for every point, its right and down
    // backbone edges; for every cell, its chosen diagonal.
    let sweep = |f: &mut dyn FnMut(usize, usize) -> Result<()>| -> Result<()> {
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    f(id(r, c), id(r, c + 1))?;
                }
                if r + 1 < rows {
                    f(id(r, c), id(r + 1, c))?;
                }
                if r + 1 < rows && c + 1 < cols {
                    match diagonals[r * (cols - 1) + c] {
                        DIAG_MAIN => f(id(r, c), id(r + 1, c + 1))?,
                        DIAG_ANTI => f(id(r, c + 1), id(r + 1, c))?,
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    };
    let euclid = |u: usize, v: usize| {
        let (ux, uy) = positions[u];
        let (vx, vy) = positions[v];
        ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
    };
    let mut builder = CsrBuilder::new(n);
    sweep(&mut |u, v| builder.count_edge(u, v))?;
    builder.begin_fill();
    sweep(&mut |u, v| builder.push_edge(u, v, euclid(u, v)))?;
    builder.finish()
}

fn generate_hyperbolic(n: usize, alpha: f64, radius: f64, seed: u64) -> Result<CsrSubgraph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            message: format!("hyperbolic graph needs at least 2 vertices, got {n}"),
        });
    }
    if !(alpha.is_finite() && alpha > 0.0) {
        return Err(GraphError::InvalidParameter {
            message: format!("hyperbolic graph needs alpha > 0, got {alpha}"),
        });
    }
    if !(radius.is_finite() && radius > 0.0) {
        return Err(GraphError::InvalidParameter {
            message: format!("hyperbolic graph needs radius > 0, got {radius}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Radii by inverse CDF of the sinh density, angles uniform. cosh/sinh
    // are precomputed per point so the pair sweep is trig-free except for
    // one cosine per pair.
    let span = (alpha * radius).cosh() - 1.0;
    let mut cosh_r = Vec::with_capacity(n);
    let mut sinh_r = Vec::with_capacity(n);
    let mut theta = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen_range(0.0..1.0);
        let r = (1.0 + u * span).acosh() / alpha;
        cosh_r.push(r.cosh());
        sinh_r.push(r.sinh());
        theta.push(rng.gen_range(0.0..std::f64::consts::TAU));
    }
    // The connection rule d(u, v) <= radius compares on the cosh scale
    // (cosh is increasing), so no acosh is needed to decide membership —
    // only accepted edges pay for the exact distance.
    let threshold = radius.cosh();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let cosh_d = (cosh_r[u] * cosh_r[v]
                - sinh_r[u] * sinh_r[v] * (theta[u] - theta[v]).cos())
            .max(1.0);
            if cosh_d <= threshold {
                // Coincident points are possible in principle; a tiny floor
                // keeps the weight a valid positive length.
                edges.push((u, v, cosh_d.acosh().max(1e-12)));
            }
        }
    }
    let mut builder = CsrBuilder::new(n);
    for &(u, v, _) in &edges {
        builder.count_edge(u, v)?;
    }
    builder.begin_fill();
    for &(u, v, w) in &edges {
        builder.push_edge(u, v, w)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::SsspWorkspace;
    use crate::NodeId;

    #[test]
    fn gnm_has_exact_counts_and_is_deterministic() {
        let spec = GeneratorSpec::Gnm {
            nodes: 200,
            edges: 800,
            weights: WeightKind::Uniform { min: 0.5, max: 2.0 },
            seed: 42,
        };
        let (g, csr) = spec.generate_with_csr().unwrap();
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 800);
        assert_eq!(csr.edge_count(), 800);
        assert_eq!(CsrSubgraph::from_graph(&g), csr);
        // Re-evaluating the spec reproduces the same graph exactly.
        assert_eq!(spec.generate().unwrap(), g);
        // A different seed gives a different graph.
        let other = GeneratorSpec::Gnm {
            nodes: 200,
            edges: 800,
            weights: WeightKind::Uniform { min: 0.5, max: 2.0 },
            seed: 43,
        };
        assert_ne!(other.generate().unwrap(), g);
        // All edges distinct is implied by Graph construction succeeding.
    }

    #[test]
    fn gnm_rejects_overfull_requests() {
        let spec = GeneratorSpec::Gnm {
            nodes: 4,
            edges: 7,
            weights: WeightKind::Unit,
            seed: 0,
        };
        assert!(spec.generate_csr().is_err());
        // Dense but legal: the complete graph.
        let full = GeneratorSpec::Gnm {
            nodes: 4,
            edges: 6,
            weights: WeightKind::Unit,
            seed: 0,
        };
        let g = full.generate().unwrap();
        assert_eq!(g.edge_count(), 6);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_and_torus_shapes() {
        let grid = GeneratorSpec::Grid {
            rows: 4,
            cols: 5,
            wrap: false,
            weights: WeightKind::Unit,
            seed: 0,
        };
        let g = grid.generate().unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(Some(g.edge_count()), grid.edge_count());
        assert_eq!(g, crate::generate::grid(4, 5));

        let torus = GeneratorSpec::Grid {
            rows: 4,
            cols: 5,
            wrap: true,
            weights: WeightKind::Unit,
            seed: 0,
        };
        let t = torus.generate().unwrap();
        assert_eq!(Some(t.edge_count()), torus.edge_count());
        // Every torus vertex has degree 4.
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        // Wrap edges close the rows and columns.
        assert!(t.has_edge(NodeId::new(0), NodeId::new(4)));
        assert!(t.has_edge(NodeId::new(0), NodeId::new(15)));
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed_and_connected() {
        let spec = GeneratorSpec::PreferentialAttachment {
            nodes: 300,
            attach: 3,
            seed: 9,
        };
        let g = spec.generate().unwrap();
        assert_eq!(g.node_count(), 300);
        assert!(g.is_connected());
        assert!(g.max_degree() > 10, "hubs should emerge");
        assert_eq!(spec.generate().unwrap(), g);
        assert!(GeneratorSpec::PreferentialAttachment {
            nodes: 3,
            attach: 3,
            seed: 0
        }
        .generate()
        .is_err());
    }

    #[test]
    fn planar_mesh_is_connected_metric_and_deterministic() {
        let spec = GeneratorSpec::PlanarMesh {
            rows: 9,
            cols: 11,
            diagonal_p: 0.4,
            jitter: 0.3,
            seed: 17,
        };
        let (g, csr) = spec.generate_with_csr().unwrap();
        assert_eq!(g.node_count(), 99);
        assert_eq!(CsrSubgraph::from_graph(&g), csr);
        assert_eq!(spec.generate().unwrap(), g);
        assert!(
            g.is_connected(),
            "the grid backbone keeps the mesh connected"
        );
        // Edge count sits between the bare backbone and backbone + one
        // diagonal per cell.
        let backbone = 9 * 10 + 11 * 8;
        assert!(g.edge_count() >= backbone);
        assert!(g.edge_count() <= backbone + 8 * 10);
        // Euclidean weights of a sub-half-unit jitter: every edge is
        // strictly positive and no longer than a jittered cell diagonal.
        let max_len = (2.0f64).sqrt() + 4.0 * 0.3;
        for (_, e) in g.edges() {
            assert!(e.weight > 0.0);
            assert!(e.weight <= max_len, "weight {} exceeds {max_len}", e.weight);
        }
        let other = GeneratorSpec::PlanarMesh {
            rows: 9,
            cols: 11,
            diagonal_p: 0.4,
            jitter: 0.3,
            seed: 18,
        };
        assert_ne!(other.generate().unwrap(), g);
    }

    #[test]
    fn planar_mesh_without_jitter_or_diagonals_is_the_unit_grid_shape() {
        let spec = GeneratorSpec::PlanarMesh {
            rows: 4,
            cols: 5,
            diagonal_p: 0.0,
            jitter: 0.0,
            seed: 3,
        };
        let g = spec.generate().unwrap();
        assert_eq!(g.edge_count(), 4 * 4 + 5 * 3);
        assert!(g.edges().all(|(_, e)| (e.weight - 1.0).abs() < 1e-12));
    }

    #[test]
    fn planar_mesh_rejects_bad_parameters() {
        let base = |rows, cols, diagonal_p, jitter| GeneratorSpec::PlanarMesh {
            rows,
            cols,
            diagonal_p,
            jitter,
            seed: 0,
        };
        assert!(base(1, 5, 0.5, 0.2).generate_csr().is_err());
        assert!(base(5, 1, 0.5, 0.2).generate_csr().is_err());
        assert!(base(5, 5, -0.1, 0.2).generate_csr().is_err());
        assert!(base(5, 5, 1.5, 0.2).generate_csr().is_err());
        assert!(base(5, 5, f64::NAN, 0.2).generate_csr().is_err());
        assert!(base(5, 5, 0.5, 0.5).generate_csr().is_err());
        assert!(base(5, 5, 0.5, -0.1).generate_csr().is_err());
        assert!(base(5, 5, 0.5, f64::NAN).generate_csr().is_err());
        assert!(base(2, 2, 1.0, 0.49).generate_csr().is_ok());
    }

    #[test]
    fn hyperbolic_is_deterministic_heterogeneous_and_metric() {
        let spec = GeneratorSpec::Hyperbolic {
            nodes: 300,
            alpha: 0.8,
            radius: 2.0 * (300.0f64).ln() * 0.55,
            seed: 23,
        };
        let (g, csr) = spec.generate_with_csr().unwrap();
        assert_eq!(g.node_count(), 300);
        assert_eq!(CsrSubgraph::from_graph(&g), csr);
        assert_eq!(spec.generate().unwrap(), g);
        assert!(g.edge_count() > 300, "the disk should be reasonably dense");
        // Hub-and-spoke degrees: the maximum dwarfs the average.
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            g.max_degree() as f64 > 3.0 * avg,
            "max degree {} vs average {avg}",
            g.max_degree()
        );
        // Weights are hyperbolic distances: positive, at most the radius.
        for (_, e) in g.edges() {
            assert!(e.weight > 0.0);
            assert!(e.weight <= 2.0 * (300.0f64).ln() * 0.55 + 1e-9);
        }
    }

    #[test]
    fn hyperbolic_rejects_bad_parameters() {
        let base = |nodes, alpha, radius| GeneratorSpec::Hyperbolic {
            nodes,
            alpha,
            radius,
            seed: 0,
        };
        assert!(base(1, 1.0, 4.0).generate_csr().is_err());
        assert!(base(50, 0.0, 4.0).generate_csr().is_err());
        assert!(base(50, -1.0, 4.0).generate_csr().is_err());
        assert!(base(50, f64::NAN, 4.0).generate_csr().is_err());
        assert!(base(50, 1.0, 0.0).generate_csr().is_err());
        assert!(base(50, 1.0, f64::INFINITY).generate_csr().is_err());
        assert!(base(2, 1.0, 0.5).generate_csr().is_ok());
    }

    #[test]
    fn decode_covers_all_pairs_in_order() {
        let n = 7;
        let pairs = (n * (n - 1) / 2) as u64;
        let all: Vec<u64> = (0..pairs).collect();
        let mut seen = Vec::new();
        decode_sorted_pairs(n, &all, |u, v| seen.push((u, v)));
        assert_eq!(seen.len(), pairs as usize);
        let mut expected = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                expected.push((u, v));
            }
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn generated_csr_serves_sssp_directly() {
        let spec = GeneratorSpec::Gnm {
            nodes: 500,
            edges: 2500,
            weights: WeightKind::Unit,
            seed: 5,
        };
        let csr = spec.generate_csr().unwrap();
        let mut ws = SsspWorkspace::new();
        csr.sssp_into(NodeId::new(0), None, None, None, &mut ws)
            .unwrap();
        let reached = ws.distances().iter().filter(|d| d.is_finite()).count();
        assert!(reached > 400, "G(500, 2500) is connected w.h.p.");
    }
}
