//! Strongly-typed identifiers for vertices, undirected edges and directed arcs.

use std::fmt;

/// Identifier of a vertex in a [`Graph`](crate::Graph) or
/// [`DiGraph`](crate::DiGraph).
///
/// Node identifiers are dense indices `0..n`; they are a thin newtype over
/// `u32` so that vertex indices, edge indices and plain counters cannot be
/// mixed up (C-NEWTYPE).
///
/// ```
/// use ftspan_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Identifier of an undirected edge in a [`Graph`](crate::Graph).
///
/// Edge identifiers are dense indices `0..m` into the parent graph's edge
/// list, which makes [`EdgeSet`](crate::EdgeSet) a simple bitset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

/// Identifier of a directed arc in a [`DiGraph`](crate::DiGraph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArcId(u32);

impl ArcId {
    /// Creates an arc identifier from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        ArcId(index as u32)
    }

    /// Returns the dense index of this arc.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for ArcId {
    fn from(index: usize) -> Self {
        ArcId::new(index)
    }
}

impl From<ArcId> for usize {
    fn from(id: ArcId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 17, 100_000] {
            let v = NodeId::new(i);
            assert_eq!(v.index(), i);
            assert_eq!(usize::from(v), i);
            assert_eq!(NodeId::from(i), v);
        }
    }

    #[test]
    fn edge_id_roundtrip() {
        for i in [0usize, 5, 4096] {
            let e = EdgeId::new(i);
            assert_eq!(e.index(), i);
            assert_eq!(usize::from(e), i);
            assert_eq!(EdgeId::from(i), e);
        }
    }

    #[test]
    fn arc_id_roundtrip() {
        for i in [0usize, 9, 333] {
            let a = ArcId::new(i);
            assert_eq!(a.index(), i);
            assert_eq!(ArcId::from(i), a);
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(4)), "v4");
        assert_eq!(format!("{}", NodeId::new(4)), "4");
        assert_eq!(format!("{:?}", EdgeId::new(2)), "e2");
        assert_eq!(format!("{:?}", ArcId::new(7)), "a7");
    }
}
