//! Distributed verification of spanners in the LOCAL model.
//!
//! One of the paper's observations is that its constructions are *local*;
//! verification is local too, and a deployed distributed system would want
//! both. This module provides two LOCAL-model checkers:
//!
//! * [`distributed_two_spanner_check`] — every vertex checks the Lemma 3.1
//!   condition for its outgoing arcs (bought, or covered by at least `r + 1`
//!   two-paths) after a single exchange in which each vertex announces its
//!   outgoing spanner arcs. Two rounds, independent of `n`.
//! * [`distributed_stretch_check`] — every vertex checks, for each incident
//!   edge of a unit-weight graph, that the other endpoint is within `k` hops
//!   in the candidate spanner, by flooding over spanner edges for `k`
//!   rounds. `k + 1` rounds total.
//!
//! Both checkers return the set of vertices that detected a violation, so a
//! caller can both decide validity (no complaints) and locate the problem.

use crate::simulator::{RoundStats, Simulator};
use ftspan_graph::{ArcSet, DiGraph, EdgeSet, Graph, NodeId};
use std::collections::HashSet;

/// The outcome of a distributed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedCheck {
    /// Vertices that detected at least one violated condition.
    pub complaining: Vec<NodeId>,
    /// Round/message accounting of the check itself.
    pub stats: RoundStats,
}

impl DistributedCheck {
    /// Returns `true` if no vertex complained.
    pub fn is_valid(&self) -> bool {
        self.complaining.is_empty()
    }
}

/// Distributed check of the Lemma 3.1 characterization: every vertex `u`
/// verifies that each of its outgoing arcs `(u, v)` is either in `spanner`
/// or covered by at least `r + 1` length-2 paths whose both arcs are in
/// `spanner`.
///
/// Communication: every vertex sends the list of heads of its outgoing
/// spanner arcs to all of its neighbors in the *support graph* (the
/// undirected graph with an edge wherever at least one arc exists); one
/// exchange suffices, because the midpoints of all 2-paths from `u` are
/// out-neighbors of `u`.
///
/// # Panics
///
/// Panics if `spanner` was built for a different digraph.
pub fn distributed_two_spanner_check(
    graph: &DiGraph,
    spanner: &ArcSet,
    r: usize,
) -> DistributedCheck {
    assert_eq!(
        spanner.capacity(),
        graph.arc_count(),
        "spanner arc set does not match the digraph"
    );
    let support = crate::two_spanner::support_graph(graph);
    let mut sim = Simulator::new(&support);

    // Message from w to every support neighbor: the heads of w's outgoing
    // spanner arcs.
    let outgoing_spanner: Vec<Vec<NodeId>> = graph
        .nodes()
        .map(|w| {
            graph
                .out_incident(w)
                .filter(|&(_, a)| spanner.contains(a))
                .map(|(head, _)| head)
                .collect()
        })
        .collect();
    let inboxes = sim.exchange(|sender, _| Some(outgoing_spanner[sender.index()].clone()));
    // One more round so every vertex can tell its neighbors whether it
    // complained (the "output" round of the LOCAL algorithm).
    sim.charge_rounds(1);

    let mut complaining = Vec::new();
    for u in graph.nodes() {
        // What u knows after the exchange: for each out-neighbor w, the set
        // of heads w points to inside the spanner.
        let mut knowledge: Vec<(NodeId, HashSet<NodeId>)> = Vec::new();
        for (from, heads) in &inboxes[u.index()] {
            knowledge.push((*from, heads.iter().copied().collect()));
        }
        let mut violated = false;
        for (v, arc) in graph.out_incident(u) {
            if spanner.contains(arc) {
                continue;
            }
            let mut covered = 0usize;
            for (w, first) in graph.out_incident(u) {
                if w == v || !spanner.contains(first) {
                    continue;
                }
                let w_heads = knowledge.iter().find(|(from, _)| *from == w);
                if w_heads.is_some_and(|(_, heads)| heads.contains(&v)) {
                    covered += 1;
                }
            }
            if covered < r + 1 {
                violated = true;
                break;
            }
        }
        if violated {
            complaining.push(u);
        }
    }
    DistributedCheck {
        complaining,
        stats: sim.stats(),
    }
}

/// Distributed stretch check for unit-weight undirected graphs: every vertex
/// `u` verifies that each neighbor `v` (in `graph`) is reachable within `k`
/// hops using only edges of `spanner`.
///
/// Implemented by `k` rounds of flooding vertex identifiers over spanner
/// edges; each vertex then inspects its own knowledge. For unit-weight
/// graphs this is exactly the `k`-spanner condition checked over edges
/// (which suffices, see Section 2 of the paper).
///
/// # Panics
///
/// Panics if `spanner` was built for a different graph or `k == 0`.
pub fn distributed_stretch_check(graph: &Graph, spanner: &EdgeSet, k: usize) -> DistributedCheck {
    assert!(k >= 1, "stretch must be at least 1");
    assert_eq!(
        spanner.capacity(),
        graph.edge_count(),
        "spanner edge set does not match the graph"
    );
    let n = graph.node_count();
    let mut sim = Simulator::new(graph);

    // known[v] = vertices known to be within the current number of rounds in
    // the spanner.
    let mut known: Vec<HashSet<NodeId>> = (0..n).map(|v| HashSet::from([NodeId::new(v)])).collect();
    for _ in 0..k {
        let snapshot: Vec<Vec<NodeId>> =
            known.iter().map(|s| s.iter().copied().collect()).collect();
        let inboxes = sim.exchange(|sender, neighbor| {
            // Only flood along spanner edges.
            graph
                .find_edge(sender, neighbor)
                .filter(|e| spanner.contains(*e))
                .map(|_| snapshot[sender.index()].clone())
        });
        for v in 0..n {
            for (_, ids) in &inboxes[v] {
                known[v].extend(ids.iter().copied());
            }
        }
    }
    sim.charge_rounds(1); // output round

    let complaining = graph
        .nodes()
        .filter(|&u| graph.neighbors(u).any(|v| !known[u.index()].contains(&v)))
        .collect();
    DistributedCheck {
        complaining,
        stats: sim.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_core::two_spanner::greedy_ft_two_spanner;
    use ftspan_graph::{generate, verify};
    use ftspan_spanners::{GreedySpanner, SpannerAlgorithm};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn two_spanner_check_accepts_valid_spanners() {
        let g = generate::complete_digraph(7);
        for r in 0..3usize {
            let result = greedy_ft_two_spanner(&g, r);
            assert!(verify::is_ft_two_spanner(&g, &result.arcs, r));
            let check = distributed_two_spanner_check(&g, &result.arcs, r);
            assert!(check.is_valid(), "valid spanner rejected at r = {r}");
            assert_eq!(check.stats.rounds, 2);
        }
    }

    #[test]
    fn two_spanner_check_localizes_violations() {
        let g = generate::gap_gadget(3, 10.0).unwrap();
        // Empty spanner: the expensive arc (0 -> 1) and all unit arcs are
        // uncovered, so at least vertex 0 (tail of violated arcs) complains.
        let empty = g.empty_arc_set();
        let check = distributed_two_spanner_check(&g, &empty, 1);
        assert!(!check.is_valid());
        assert!(check.complaining.contains(&NodeId::new(0)));
        // The distributed verdict agrees with the centralized oracle.
        assert!(!verify::is_ft_two_spanner(&g, &empty, 1));
    }

    #[test]
    fn two_spanner_check_agrees_with_centralized_oracle_on_random_inputs() {
        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generate::directed_gnp(10, 0.4, generate::WeightKind::Unit, &mut rng);
            for r in 0..2usize {
                // Candidate: a random subset of arcs.
                let mut candidate = g.empty_arc_set();
                for (id, _) in g.arcs() {
                    if rng.gen::<f64>() < 0.8 {
                        candidate.insert(id);
                    }
                }
                let centralized = verify::is_ft_two_spanner(&g, &candidate, r);
                let distributed = distributed_two_spanner_check(&g, &candidate, r).is_valid();
                assert_eq!(centralized, distributed, "seed {seed}, r = {r}");
            }
        }
    }

    #[test]
    fn stretch_check_accepts_greedy_spanners() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut rng);
        let spanner = GreedySpanner::new(3.0).build(&g, &mut rng);
        assert!(verify::is_k_spanner(&g, &spanner, 3.0));
        let check = distributed_stretch_check(&g, &spanner, 3);
        assert!(check.is_valid());
        assert_eq!(check.stats.rounds, 4); // k rounds of flooding + output
    }

    #[test]
    fn stretch_check_detects_missing_edges() {
        let g = generate::cycle(8);
        let mut spanner = g.full_edge_set();
        // Drop one cycle edge: its endpoints are now 7 hops apart in the
        // spanner, far beyond stretch 3.
        spanner.remove(ftspan_graph::EdgeId::new(0));
        let check = distributed_stretch_check(&g, &spanner, 3);
        assert!(!check.is_valid());
        // Both endpoints of the dropped edge complain.
        assert_eq!(check.complaining.len(), 2);
        // With a large enough stretch bound the same spanner is accepted.
        let relaxed = distributed_stretch_check(&g, &spanner, 7);
        assert!(relaxed.is_valid());
    }

    #[test]
    #[should_panic]
    fn stretch_check_rejects_zero_stretch() {
        let g = generate::path(3);
        distributed_stretch_check(&g, &g.full_edge_set(), 0);
    }
}
