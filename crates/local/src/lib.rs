//! The LOCAL model of distributed computation and the distributed
//! fault-tolerant spanner algorithms of Dinitz & Krauthgamer (PODC 2011).
//!
//! In the LOCAL model the communication network *is* the input graph: in
//! every synchronous round each vertex may send an unbounded message to each
//! neighbor, and after `t` rounds a vertex's output may depend only on its
//! `t`-hop neighborhood. This crate provides:
//!
//! * [`simulator`] — a synchronous round-based simulator with round and
//!   message accounting; every algorithm below is written against it so the
//!   reported round counts are measured, not asserted.
//! * [`padded`] — the distributed padded decomposition of Lemma 3.7
//!   (Bartal / Linial–Saks style ball carving with geometric radii).
//! * [`spanner`] — the distributed fault-tolerant spanner conversion of
//!   Theorem 2.3 / Corollary 2.4, built on a flooding-based cluster spanner.
//! * [`two_spanner`] — the distributed `O(log n)`-approximation for
//!   minimum-cost `r`-fault-tolerant 2-spanner (Algorithm 2 / Theorem 3.9):
//!   padded decomposition, per-cluster LPs, averaging, local rounding.
//! * [`verify`] — distributed verification: the Lemma 3.1 check in two
//!   rounds and a `k`-round stretch check for unit-weight graphs.
//!
//! # Example
//!
//! ```
//! use ftspan_local::spanner::{distributed_fault_tolerant_spanner, DistributedConversionConfig};
//! use ftspan_graph::{generate, verify};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
//! let g = generate::gnp(25, 0.4, generate::WeightKind::Unit, &mut rng);
//! let cfg = DistributedConversionConfig::new(1, 3);
//! let out = distributed_fault_tolerant_spanner(&g, &cfg, &mut rng);
//! assert!(verify::is_fault_tolerant_k_spanner(&g, &out.edges, 3.0, 1));
//! assert!(out.stats.rounds > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod padded;
pub mod simulator;
pub mod spanner;
pub mod two_spanner;
pub mod verify;
