//! Distributed padded decomposition (Lemma 3.7).
//!
//! Every vertex draws a radius from a (truncated) geometric distribution and
//! floods its identifier that many hops; every vertex then joins the cluster
//! of the smallest identifier it heard. This is the distributed adaptation of
//! Bartal's ball-carving construction described in Lemma 3.7 of the paper:
//! it runs in `O(log n)` rounds, produces clusters of weak diameter
//! `O(log n)`, and pads each vertex's neighborhood (the whole neighborhood
//! lands in one cluster) with constant probability.

use crate::simulator::{bounded_flood, RoundStats, Simulator};
use ftspan_graph::{Graph, NodeId};
use rand::Rng;
use rand::RngCore;

/// Parameters of the padded decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaddedDecompositionConfig {
    /// Success parameter of the geometric radius distribution; smaller values
    /// give larger clusters (and better padding) at the cost of diameter.
    pub geometric_p: f64,
    /// Hard cap on every radius, as a multiple of `ln n` (the truncation the
    /// paper notes does not affect the analysis).
    pub radius_cap_factor: f64,
}

impl Default for PaddedDecompositionConfig {
    fn default() -> Self {
        PaddedDecompositionConfig {
            geometric_p: 0.25,
            radius_cap_factor: 2.0,
        }
    }
}

impl PaddedDecompositionConfig {
    /// The radius cap `O(log n)` for an `n`-vertex graph.
    pub fn radius_cap(&self, n: usize) -> usize {
        ((n.max(2) as f64).ln() * self.radius_cap_factor).ceil() as usize
    }
}

/// A partition of the vertices into low-diameter clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaddedDecomposition {
    /// For every vertex, the identifier of its cluster center (the cluster
    /// label). Isolated vertices are their own center.
    pub center_of: Vec<NodeId>,
    /// For every vertex, its hop distance to the cluster center along the
    /// flood tree.
    pub dist_to_center: Vec<usize>,
    /// For every vertex, the neighbor through which the center's flood first
    /// arrived (the parent in the cluster tree; the center is its own
    /// parent).
    pub parent: Vec<NodeId>,
    /// Round/message accounting of the construction.
    pub stats: RoundStats,
}

impl PaddedDecomposition {
    /// The vertices of the cluster labelled by `center`.
    pub fn cluster(&self, center: NodeId) -> Vec<NodeId> {
        self.center_of
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == center)
            .map(|(v, _)| NodeId::new(v))
            .collect()
    }

    /// All distinct cluster labels.
    pub fn centers(&self) -> Vec<NodeId> {
        let mut cs: Vec<NodeId> = self.center_of.clone();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Returns `true` if vertex `v` and its whole neighborhood lie in one
    /// cluster — the padding event of Definition 3.6.
    pub fn is_padded(&self, graph: &Graph, v: NodeId) -> bool {
        let c = self.center_of[v.index()];
        graph.neighbors(v).all(|u| self.center_of[u.index()] == c)
    }

    /// Fraction of vertices that are padded.
    pub fn padded_fraction(&self, graph: &Graph) -> f64 {
        if graph.node_count() == 0 {
            return 1.0;
        }
        let padded = graph.nodes().filter(|&v| self.is_padded(graph, v)).count();
        padded as f64 / graph.node_count() as f64
    }

    /// The maximum hop distance from any vertex to its cluster center — an
    /// upper bound on (half of) every cluster's weak diameter.
    pub fn max_radius(&self) -> usize {
        self.dist_to_center.iter().copied().max().unwrap_or(0)
    }
}

/// Samples one padded decomposition distributedly (Lemma 3.7).
///
/// Runs `radius_cap(n)` flooding rounds on the communication graph; the
/// returned [`PaddedDecomposition::stats`] reports the exact count.
pub fn sample_padded_decomposition(
    graph: &Graph,
    config: &PaddedDecompositionConfig,
    rng: &mut dyn RngCore,
) -> PaddedDecomposition {
    let n = graph.node_count();
    let cap = config.radius_cap(n);

    // Every vertex draws its geometric radius locally.
    let radii: Vec<usize> = (0..n)
        .map(|_| {
            let mut r = 0usize;
            while r < cap && rng.gen::<f64>() > config.geometric_p {
                r += 1;
            }
            r
        })
        .collect();

    let active = vec![true; n];
    let mut sim = Simulator::new(graph);
    let tokens = bounded_flood(&mut sim, &radii, &active, cap);

    let mut center_of = Vec::with_capacity(n);
    let mut dist_to_center = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    for heard in tokens.iter().take(n) {
        // Pick the smallest identifier heard (lexicographic rule of the
        // paper's variant of Bartal's construction); every vertex hears at
        // least itself.
        let winner = heard
            .iter()
            .min_by_key(|t| t.source)
            .copied()
            .expect("every active vertex hears its own token");
        center_of.push(winner.source);
        dist_to_center.push(winner.distance);
        parent.push(winner.parent);
    }

    PaddedDecomposition {
        center_of,
        dist_to_center,
        parent,
        stats: sim.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn every_vertex_gets_a_cluster() {
        let g = generate::grid(6, 6);
        let d = sample_padded_decomposition(&g, &PaddedDecompositionConfig::default(), &mut rng(1));
        assert_eq!(d.center_of.len(), 36);
        // Cluster labels are real vertices and members are consistent.
        for c in d.centers() {
            assert!(c.index() < 36);
            assert!(!d.cluster(c).is_empty());
        }
        let total: usize = d.centers().iter().map(|&c| d.cluster(c).len()).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn rounds_are_logarithmic() {
        let g = generate::gnp(80, 0.1, generate::WeightKind::Unit, &mut rng(2));
        let cfg = PaddedDecompositionConfig::default();
        let d = sample_padded_decomposition(&g, &cfg, &mut rng(3));
        assert_eq!(d.stats.rounds, cfg.radius_cap(80));
        assert!(d.stats.rounds <= (2.0 * (80f64).ln()).ceil() as usize);
    }

    #[test]
    fn cluster_radius_is_bounded_by_cap() {
        let g = generate::path(64);
        let cfg = PaddedDecompositionConfig::default();
        let d = sample_padded_decomposition(&g, &cfg, &mut rng(4));
        assert!(d.max_radius() <= cfg.radius_cap(64));
    }

    #[test]
    fn padding_probability_is_substantial() {
        // Definition 3.6 asks Pr[N(x) ⊆ P(x)] >= 1/2 per vertex; empirically
        // the average padded fraction over several samples should be well
        // above a loose 0.3 threshold on a bounded-degree graph.
        let g = generate::grid(8, 8);
        let mut r = rng(5);
        let cfg = PaddedDecompositionConfig::default();
        let mut total = 0.0;
        let samples = 20;
        for _ in 0..samples {
            let d = sample_padded_decomposition(&g, &cfg, &mut r);
            total += d.padded_fraction(&g);
        }
        let avg = total / samples as f64;
        assert!(avg > 0.3, "average padded fraction {avg} too small");
    }

    #[test]
    fn isolated_vertices_are_their_own_cluster() {
        let g = ftspan_graph::Graph::new(4);
        let d = sample_padded_decomposition(&g, &PaddedDecompositionConfig::default(), &mut rng(6));
        for v in 0..4 {
            assert_eq!(d.center_of[v], NodeId::new(v));
            assert_eq!(d.dist_to_center[v], 0);
        }
        assert_eq!(d.padded_fraction(&g), 1.0);
    }

    #[test]
    fn parents_are_neighbors_and_centers_are_roots() {
        let g = generate::grid(5, 5);
        let d = sample_padded_decomposition(&g, &PaddedDecompositionConfig::default(), &mut rng(7));
        for v in g.nodes() {
            if d.center_of[v.index()] == v {
                assert_eq!(d.parent[v.index()], v);
                assert_eq!(d.dist_to_center[v.index()], 0);
            } else {
                let p = d.parent[v.index()];
                assert!(
                    g.neighbors(v).any(|u| u == p),
                    "parent of {v:?} must be one of its neighbors"
                );
                assert!(d.dist_to_center[v.index()] >= 1);
            }
        }
    }
}
