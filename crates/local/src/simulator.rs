//! A synchronous message-passing simulator for the LOCAL model.
//!
//! The simulator does not try to be a general actor framework; it provides
//! exactly the primitive the LOCAL model allows — one synchronous exchange of
//! (arbitrarily large) messages along the edges of the communication graph —
//! and keeps count of rounds and messages so experiments can report measured
//! round complexities.

use ftspan_graph::{Graph, NodeId};

/// Round and message accounting for a distributed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Number of synchronous communication rounds executed.
    pub rounds: usize,
    /// Total number of (node-to-node) messages delivered.
    pub messages: usize,
    /// The largest number of entries in any single message (a proxy for the
    /// unbounded-message-size allowance of the LOCAL model).
    pub max_message_entries: usize,
}

impl RoundStats {
    /// Merges the accounting of a sub-computation into this one.
    pub fn absorb(&mut self, other: RoundStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.max_message_entries = self.max_message_entries.max(other.max_message_entries);
    }
}

/// A synchronous LOCAL-model simulator over a communication graph.
///
/// Algorithms drive it by calling [`Simulator::exchange`] once per round; the
/// closure decides, for every ordered pair `(sender, neighbor)`, what message
/// (if any) the sender puts on that link. The simulator delivers all messages
/// simultaneously and returns every node's inbox.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    stats: RoundStats,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over the given communication graph.
    pub fn new(graph: &'g Graph) -> Self {
        Simulator {
            graph,
            stats: RoundStats::default(),
        }
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The accounting so far.
    pub fn stats(&self) -> RoundStats {
        self.stats
    }

    /// Executes one synchronous round.
    ///
    /// `send(sender, neighbor)` is invoked for every sender and each of its
    /// neighbors and returns the message to put on that link (`None` for no
    /// message). The returned vector contains, for every node, the list of
    /// `(sender, message)` pairs it received this round.
    pub fn exchange<M, F>(&mut self, mut send: F) -> Vec<Vec<(NodeId, M)>>
    where
        M: Clone,
        F: FnMut(NodeId, NodeId) -> Option<M>,
    {
        let n = self.graph.node_count();
        let mut inboxes: Vec<Vec<(NodeId, M)>> = (0..n).map(|_| Vec::new()).collect();
        for sender in self.graph.nodes() {
            for neighbor in self.graph.neighbors(sender) {
                if let Some(msg) = send(sender, neighbor) {
                    self.stats.messages += 1;
                    inboxes[neighbor.index()].push((sender, msg));
                }
            }
        }
        self.stats.rounds += 1;
        self.stats.max_message_entries = self.stats.max_message_entries.max(1);
        self.record_message_sizes(&inboxes);
        inboxes
    }

    /// Charges `rounds` additional rounds of purely local computation or of a
    /// sub-protocol whose communication is accounted elsewhere (e.g. the
    /// cluster-internal gathering in Algorithm 2, which takes `O(diam)`
    /// rounds along the cluster tree).
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.stats.rounds += rounds;
    }

    fn record_message_sizes<M>(&mut self, inboxes: &[Vec<(NodeId, M)>]) {
        for inbox in inboxes {
            self.stats.max_message_entries = self.stats.max_message_entries.max(inbox.len());
        }
    }
}

/// Floods `(source id, hop distance)` tokens for `radius` rounds, but each
/// source `u` only floods up to its own personal radius `radii[u]`.
///
/// Returns, for every vertex `v`, the list of `(source, hop distance,
/// first-hop parent towards the source)` tokens it received (including
/// itself at distance 0 with itself as parent). This is the communication
/// pattern shared by the padded decomposition (Lemma 3.7) and the
/// flooding-based cluster spanner.
pub fn bounded_flood(
    sim: &mut Simulator<'_>,
    radii: &[usize],
    active: &[bool],
    radius: usize,
) -> Vec<Vec<FloodToken>> {
    let n = sim.graph().node_count();
    assert_eq!(radii.len(), n, "one radius per vertex required");
    assert_eq!(active.len(), n, "one activity flag per vertex required");

    // known[v] maps source -> (distance, parent)
    let mut known: Vec<std::collections::HashMap<usize, (usize, NodeId)>> =
        (0..n).map(|_| std::collections::HashMap::new()).collect();
    for v in 0..n {
        if active[v] {
            known[v].insert(v, (0, NodeId::new(v)));
        }
    }
    // Tokens that still need to be forwarded by each vertex.
    let mut frontier: Vec<Vec<(usize, usize)>> = (0..n)
        .map(|v| {
            if active[v] && radii[v] > 0 {
                vec![(v, 0)]
            } else {
                Vec::new()
            }
        })
        .collect();

    for _ in 0..radius {
        if frontier.iter().all(Vec::is_empty) {
            // Nothing left to forward; later rounds would be silent but the
            // LOCAL algorithm still waits for them, so charge the time.
            sim.charge_rounds(1);
            continue;
        }
        let outgoing: Vec<Vec<(usize, usize)>> = frontier.clone();
        let inboxes = sim.exchange(|sender, _neighbor| {
            let msgs = &outgoing[sender.index()];
            if msgs.is_empty() || !active[sender.index()] {
                None
            } else {
                Some(msgs.clone())
            }
        });
        let mut next_frontier: Vec<Vec<(usize, usize)>> = (0..n).map(|_| Vec::new()).collect();
        for v in 0..n {
            if !active[v] {
                continue;
            }
            for (from, tokens) in &inboxes[v] {
                for &(source, dist) in tokens {
                    let nd = dist + 1;
                    if nd > radii[source] {
                        continue;
                    }
                    let entry = known[v].get(&source).copied();
                    if entry.is_none_or(|(d, _)| nd < d) {
                        known[v].insert(source, (nd, *from));
                        if nd < radii[source] {
                            next_frontier[v].push((source, nd));
                        }
                    }
                }
            }
        }
        frontier = next_frontier;
    }

    known
        .into_iter()
        .map(|m| {
            let mut tokens: Vec<FloodToken> = m
                .into_iter()
                .map(|(source, (distance, parent))| FloodToken {
                    source: NodeId::new(source),
                    distance,
                    parent,
                })
                .collect();
            tokens.sort_by_key(|t| (t.distance, t.source));
            tokens
        })
        .collect()
}

/// A token received during [`bounded_flood`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodToken {
    /// The vertex that originated the flood.
    pub source: NodeId,
    /// Hop distance from the source.
    pub distance: usize,
    /// The neighbor the token was first received from (the source itself at
    /// distance 0) — the parent pointer of the implicit BFS tree.
    pub parent: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;

    #[test]
    fn exchange_counts_rounds_and_messages() {
        let g = generate::path(4);
        let mut sim = Simulator::new(&g);
        let inboxes = sim.exchange(|sender, _| Some(sender.index()));
        // A path has 3 edges => 6 directed messages.
        assert_eq!(sim.stats().rounds, 1);
        assert_eq!(sim.stats().messages, 6);
        // Interior vertices receive two messages.
        assert_eq!(inboxes[1].len(), 2);
        assert_eq!(inboxes[0].len(), 1);
    }

    #[test]
    fn exchange_can_be_selective() {
        let g = generate::complete(5);
        let mut sim = Simulator::new(&g);
        let inboxes = sim.exchange(|sender, neighbor| {
            if sender.index() == 0 && neighbor.index() == 1 {
                Some("hello")
            } else {
                None
            }
        });
        assert_eq!(sim.stats().messages, 1);
        assert_eq!(inboxes[1].len(), 1);
        assert!(inboxes[2].is_empty());
    }

    #[test]
    fn flood_reaches_exactly_the_ball() {
        let g = generate::path(6);
        let mut sim = Simulator::new(&g);
        let radii = vec![2, 0, 0, 0, 0, 0];
        let active = vec![true; 6];
        let tokens = bounded_flood(&mut sim, &radii, &active, 3);
        // Vertex 0 floods up to distance 2: vertices 0, 1, 2 hear it.
        assert!(tokens[2]
            .iter()
            .any(|t| t.source == NodeId::new(0) && t.distance == 2));
        assert!(!tokens[3].iter().any(|t| t.source == NodeId::new(0)));
        // Everyone knows itself.
        for (v, toks) in tokens.iter().enumerate() {
            assert!(toks
                .iter()
                .any(|t| t.source == NodeId::new(v) && t.distance == 0));
        }
        // Three rounds were charged even though flooding stopped earlier.
        assert_eq!(sim.stats().rounds, 3);
    }

    #[test]
    fn flood_respects_inactive_vertices() {
        let g = generate::path(5);
        let mut sim = Simulator::new(&g);
        let radii = vec![4; 5];
        let mut active = vec![true; 5];
        active[2] = false; // break the path in the middle
        let tokens = bounded_flood(&mut sim, &radii, &active, 4);
        assert!(!tokens[3].iter().any(|t| t.source == NodeId::new(0)));
        assert!(tokens[1].iter().any(|t| t.source == NodeId::new(0)));
        // The inactive vertex learns nothing, not even itself.
        assert!(tokens[2].is_empty());
    }

    #[test]
    fn flood_parent_pointers_form_shortest_paths() {
        let g = generate::grid(3, 3);
        let mut sim = Simulator::new(&g);
        let radii = vec![4; 9];
        let active = vec![true; 9];
        let tokens = bounded_flood(&mut sim, &radii, &active, 4);
        // Corner 0 reaches the opposite corner 8 at distance 4; walking the
        // parent pointers decreases the distance by one per step.
        let t = tokens[8]
            .iter()
            .find(|t| t.source == NodeId::new(0))
            .unwrap();
        assert_eq!(t.distance, 4);
        let p = t.parent;
        let tp = tokens[p.index()]
            .iter()
            .find(|t| t.source == NodeId::new(0))
            .unwrap();
        assert_eq!(tp.distance, 3);
    }

    #[test]
    fn stats_absorb() {
        let mut a = RoundStats {
            rounds: 2,
            messages: 10,
            max_message_entries: 3,
        };
        let b = RoundStats {
            rounds: 1,
            messages: 5,
            max_message_entries: 7,
        };
        a.absorb(b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.messages, 15);
        assert_eq!(a.max_message_entries, 7);
    }
}
