//! The distributed `O(log n)`-approximation for minimum-cost
//! `r`-fault-tolerant 2-spanner (Algorithm 2 / Theorem 3.9).
//!
//! The only non-local ingredient of the centralized Theorem 3.3 algorithm is
//! solving the LP. Algorithm 2 removes it: `t = O(log n)` times, sample a
//! padded decomposition, let every cluster center gather its cluster's
//! neighborhood `G(C)` and solve the cluster-local LP (with boundary arcs
//! given cost 0), then average the per-cluster values over the iterations in
//! which an arc was internal to a cluster and scale by 4. Lemma 3.8 shows the
//! per-cluster optima sum to at most the global LP optimum, and the padding
//! property delivers feasibility of the averaged solution with high
//! probability; the final rounding is the purely local Algorithm 1.
//!
//! Round accounting: each iteration costs the decomposition's `O(log n)`
//! flooding rounds plus `O(log n)` rounds for gathering/broadcasting inside
//! clusters (their radius is `O(log n)`), and the rounding adds a constant
//! number of rounds — `O(log² n)` in total, as stated by Theorem 3.9.

use crate::padded::{sample_padded_decomposition, PaddedDecompositionConfig};
use crate::simulator::RoundStats;
use ftspan_core::two_spanner::relaxation::{solve_relaxation, RelaxationConfig};
use ftspan_core::two_spanner::rounding::round_thresholds;
use ftspan_core::{CoreError, Result};
use ftspan_graph::verify::two_spanner_violations;
use ftspan_graph::{ArcId, ArcSet, DiGraph, Graph, NodeId};
use rand::RngCore;

/// Configuration of the distributed 2-spanner approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedTwoSpannerConfig {
    /// Number of vertex faults `r` to tolerate.
    pub faults: usize,
    /// Number of decomposition/averaging repetitions `t`; `None` uses
    /// `⌈3 ln n⌉`.
    pub repetitions: Option<usize>,
    /// Constant `C` of the rounding inflation `α = C ln n`.
    pub alpha_constant: f64,
    /// Parameters of the padded decomposition (Lemma 3.7).
    pub decomposition: PaddedDecompositionConfig,
    /// Maximum cutting-plane rounds per cluster LP.
    pub max_cut_rounds: usize,
    /// Whether to repair any arc left uncovered after rounding (costs O(1)
    /// extra rounds; keeps the output always valid).
    pub repair: bool,
}

impl DistributedTwoSpannerConfig {
    /// The paper's configuration for `faults` failures.
    pub fn new(faults: usize) -> Self {
        DistributedTwoSpannerConfig {
            faults,
            repetitions: None,
            alpha_constant: 3.0,
            decomposition: PaddedDecompositionConfig::default(),
            max_cut_rounds: 30,
            repair: true,
        }
    }

    /// Overrides the number of repetitions `t`.
    pub fn with_repetitions(mut self, t: usize) -> Self {
        self.repetitions = Some(t.max(1));
        self
    }

    /// The number of repetitions used for an `n`-vertex graph.
    pub fn repetitions_for(&self, n: usize) -> usize {
        self.repetitions
            .unwrap_or_else(|| (3.0 * (n.max(2) as f64).ln()).ceil() as usize)
            .max(1)
    }
}

/// Output of the distributed 2-spanner approximation.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedTwoSpannerResult {
    /// The arcs of the `r`-fault-tolerant 2-spanner.
    pub arcs: ArcSet,
    /// Total cost of the selected arcs.
    pub cost: f64,
    /// The averaged fractional values `x̃` the rounding used.
    pub x_tilde: Vec<f64>,
    /// Sum of the per-cluster LP optima of the *last* repetition — by
    /// Lemma 3.8 a lower bound proxy recorded for reporting.
    pub clustered_lp_value: f64,
    /// Number of repetitions `t` that were run.
    pub repetitions: usize,
    /// Number of arcs added by the repair step.
    pub repaired_arcs: usize,
    /// Measured round/message accounting (decomposition rounds are measured;
    /// cluster gathering and the final rounding exchange are charged at their
    /// LOCAL-model cost).
    pub stats: RoundStats,
}

/// The undirected communication graph underlying a directed instance: one
/// edge per pair of vertices joined by at least one arc (the paper assumes
/// communication along an edge is bidirectional).
pub fn support_graph(graph: &DiGraph) -> Graph {
    let mut g = Graph::new(graph.node_count());
    for (_, arc) in graph.arcs() {
        if !g.has_edge(arc.tail, arc.head) {
            g.add_edge(arc.tail, arc.head, 1.0)
                .expect("arcs of a valid digraph are valid edges");
        }
    }
    g
}

/// Algorithm 2: the distributed `O(log n)`-approximation for minimum-cost
/// `r`-fault-tolerant 2-spanner.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for an empty graph and
/// [`CoreError::Lp`] if a cluster LP cannot be solved.
pub fn distributed_two_spanner(
    graph: &DiGraph,
    config: &DistributedTwoSpannerConfig,
    rng: &mut dyn RngCore,
) -> Result<DistributedTwoSpannerResult> {
    let n = graph.node_count();
    if n == 0 {
        return Err(CoreError::InvalidParameter {
            message: "cannot build a 2-spanner of a graph with no vertices".to_string(),
        });
    }
    let support = support_graph(graph);
    let t = config.repetitions_for(n);

    let mut accum = vec![0.0f64; graph.arc_count()];
    let mut stats = RoundStats::default();
    let mut clustered_lp_value = 0.0;

    for _ in 0..t {
        let decomposition = sample_padded_decomposition(&support, &config.decomposition, rng);
        stats.absorb(decomposition.stats);
        // Gathering G(C) at the center and broadcasting the solution back
        // takes O(cluster radius) rounds along the flood tree.
        stats.rounds += 2 * (decomposition.max_radius() + 1);

        clustered_lp_value = 0.0;
        for center in decomposition.centers() {
            let members: Vec<NodeId> = decomposition.cluster(center);
            let in_cluster = |v: NodeId| decomposition.center_of[v.index()] == center;
            // C ∪ N(C) over the support graph.
            let mut in_scope = vec![false; n];
            for &v in &members {
                in_scope[v.index()] = true;
                for u in support.neighbors(v) {
                    in_scope[u.index()] = true;
                }
            }
            // Build the cluster-local digraph G(C) with boundary arcs at cost 0.
            let mut local = DiGraph::new(n);
            let mut arc_map: Vec<ArcId> = Vec::new();
            for (id, arc) in graph.arcs() {
                if in_scope[arc.tail.index()] && in_scope[arc.head.index()] {
                    let internal = in_cluster(arc.tail) && in_cluster(arc.head);
                    let cost = if internal { arc.cost } else { 0.0 };
                    local
                        .add_arc(arc.tail, arc.head, cost)
                        .expect("arcs of a valid digraph remain valid");
                    arc_map.push(id);
                }
            }
            if local.arc_count() == 0 {
                continue;
            }
            let relax_cfg = RelaxationConfig {
                faults: config.faults,
                knapsack_cover: true,
                max_cut_rounds: config.max_cut_rounds,
                separation_tolerance: 1e-7,
                // The LOCAL-model simulation is per-cluster sequential: its
                // round/message accounting assumes one in-flight solve.
                threads: 1,
            };
            let solution = solve_relaxation(&local, &relax_cfg)?;
            clustered_lp_value += solution.objective;
            for (local_idx, &parent_id) in arc_map.iter().enumerate() {
                let arc = graph.arc(parent_id);
                if in_cluster(arc.tail) && in_cluster(arc.head) {
                    accum[parent_id.index()] += solution.x[local_idx];
                }
            }
        }
    }

    // x̃_e = min(1, (4/t) Σ_{i ∈ I_e} x_e^i).
    let x_tilde: Vec<f64> = accum
        .iter()
        .map(|&s| (4.0 * s / t as f64).min(1.0))
        .collect();

    // Purely local rounding (Algorithm 1), one exchange so both endpoints
    // learn which arcs were bought, plus a constant number of rounds for the
    // optional 2-hop repair.
    let alpha = config.alpha_constant * (n.max(2) as f64).ln();
    let (mut arcs, _thresholds) = round_thresholds(graph, &x_tilde, alpha, rng);
    stats.rounds += 1;

    let mut repaired = 0usize;
    if config.repair {
        for a in two_spanner_violations(graph, &arcs, config.faults) {
            arcs.insert(a);
            repaired += 1;
        }
        stats.rounds += 2;
    }

    let cost = graph.arc_set_cost(&arcs)?;
    Ok(DistributedTwoSpannerResult {
        arcs,
        cost,
        x_tilde,
        clustered_lp_value,
        repetitions: t,
        repaired_arcs: repaired,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn support_graph_merges_antiparallel_arcs() {
        let g = DiGraph::from_unit_arcs(3, [(0, 1), (1, 0), (1, 2)]).unwrap();
        let s = support_graph(&g);
        assert_eq!(s.edge_count(), 2);
        assert!(s.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = DiGraph::new(0);
        let cfg = DistributedTwoSpannerConfig::new(1);
        assert!(distributed_two_spanner(&g, &cfg, &mut rng(1)).is_err());
    }

    #[test]
    fn output_is_valid_on_random_digraphs() {
        let mut r = rng(2);
        for faults in [0usize, 1] {
            let g = generate::directed_gnp(10, 0.4, generate::WeightKind::Unit, &mut r);
            let cfg = DistributedTwoSpannerConfig::new(faults).with_repetitions(4);
            let out = distributed_two_spanner(&g, &cfg, &mut r).unwrap();
            assert!(
                verify::is_ft_two_spanner(&g, &out.arcs, faults),
                "distributed output invalid for r = {faults}"
            );
            assert!(out.cost <= g.total_cost() + 1e-9);
            assert_eq!(out.repetitions, 4);
            assert_eq!(out.x_tilde.len(), g.arc_count());
        }
    }

    #[test]
    fn round_count_is_polylogarithmic() {
        let mut r = rng(3);
        let g = generate::directed_gnp(14, 0.3, generate::WeightKind::Unit, &mut r);
        let cfg = DistributedTwoSpannerConfig::new(1);
        let out = distributed_two_spanner(&g, &cfg, &mut r).unwrap();
        let n = 14f64;
        let t = cfg.repetitions_for(14) as f64;
        let cap = cfg.decomposition.radius_cap(14) as f64;
        // Each repetition: cap flooding rounds + at most 2(cap + 1) gathering
        // rounds; plus a constant for rounding/repair.
        let upper = t * (cap + 2.0 * (cap + 1.0)) + 4.0;
        assert!(
            (out.stats.rounds as f64) <= upper,
            "rounds {} exceed the O(log^2 n) budget {} (n = {n})",
            out.stats.rounds,
            upper
        );
        assert!(out.stats.rounds > 0);
    }

    #[test]
    fn gap_gadget_is_covered() {
        let mut r = rng(4);
        let g = generate::gap_gadget(2, 30.0).unwrap();
        let cfg = DistributedTwoSpannerConfig::new(2).with_repetitions(3);
        let out = distributed_two_spanner(&g, &cfg, &mut r).unwrap();
        assert!(verify::is_ft_two_spanner(&g, &out.arcs, 2));
        // The only valid solution buys everything.
        assert_eq!(out.arcs.len(), g.arc_count());
    }

    #[test]
    fn x_tilde_is_clamped_to_unit_interval() {
        let mut r = rng(5);
        let g = generate::directed_gnp(9, 0.5, generate::WeightKind::Unit, &mut r);
        let cfg = DistributedTwoSpannerConfig::new(1).with_repetitions(2);
        let out = distributed_two_spanner(&g, &cfg, &mut r).unwrap();
        for &x in &out.x_tilde {
            assert!((0.0..=1.0).contains(&x));
        }
    }
}
