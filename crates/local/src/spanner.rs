//! The distributed fault-tolerant spanner conversion (Theorem 2.3 /
//! Corollary 2.4).
//!
//! Theorem 2.3 observes that the conversion of Theorem 2.1 is trivially
//! distributed: the fault-set oversampling is a purely local coin flip at
//! every vertex, so if the underlying `k`-spanner algorithm is distributed
//! (takes `t(n)` rounds), the whole construction takes `O(r³ log n · t(n))`
//! rounds.
//!
//! The underlying distributed black box here is the classic one-level
//! clustering 3-spanner (the `k = 2` case of Baswana–Sen): every vertex
//! becomes a cluster center with probability `n^{-1/2}`; every other vertex
//! either joins an adjacent center (keeping that star edge) or, if it has no
//! sampled neighbor, keeps all its edges; finally every vertex keeps one edge
//! into every adjacent cluster. This takes a constant number of LOCAL rounds,
//! produces a 3-spanner of expected size `O(n^{3/2})` on unit-length graphs,
//! and — unlike ball-carving with weak-diameter clusters — has connected
//! (star) clusters, so the stretch argument is exact. It stands in for the
//! Derbel–Gavoille–Peleg–Viennot construction of Corollary 2.4 (see the
//! substitution note in DESIGN.md).

use crate::simulator::{RoundStats, Simulator};
use ftspan_graph::{EdgeSet, Graph, NodeId};
use rand::Rng;
use rand::RngCore;

/// Configuration of the distributed conversion (stretch 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedConversionConfig {
    /// Number of vertex faults `r` to tolerate.
    pub faults: usize,
    /// Explicit number of iterations; `None` uses the Theorem 2.1 default
    /// (see [`ftspan_core::conversion::ConversionParams`]).
    pub iterations: Option<usize>,
    /// Scale factor on the default iteration count.
    pub scale: f64,
}

impl DistributedConversionConfig {
    /// Configuration tolerating `faults` failures (stretch is 3; the
    /// `stretch` argument is kept for symmetry with the centralized API and
    /// must be 3).
    ///
    /// # Panics
    ///
    /// Panics if `stretch != 3`.
    pub fn new(faults: usize, stretch: usize) -> Self {
        assert_eq!(
            stretch, 3,
            "the distributed black box implemented here is a 3-spanner; \
             use the centralized conversion for other stretches"
        );
        DistributedConversionConfig {
            faults,
            iterations: None,
            scale: 1.0,
        }
    }

    /// Overrides the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Scales the default iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// The stretch guaranteed by the construction.
    pub fn stretch(&self) -> f64 {
        3.0
    }

    fn conversion_params(&self) -> ftspan_core::conversion::ConversionParams {
        let mut p =
            ftspan_core::conversion::ConversionParams::new(self.faults).with_scale(self.scale);
        if let Some(it) = self.iterations {
            p = p.with_iterations(it);
        }
        p
    }
}

/// Output of the distributed conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedSpanner {
    /// The edges of the fault-tolerant spanner (over the input graph's edge
    /// identifiers).
    pub edges: EdgeSet,
    /// Number of conversion iterations executed.
    pub iterations: usize,
    /// Measured round/message accounting over the whole execution.
    pub stats: RoundStats,
}

/// One run of the distributed 3-spanner (one-level clustering) on the
/// surviving vertices `alive`.
///
/// The construction uses exactly two communication rounds on the simulator:
/// one in which sampled centers announce themselves, and one in which every
/// vertex announces the cluster it joined.
pub fn distributed_three_spanner(
    graph: &Graph,
    alive: &[bool],
    sim: &mut Simulator<'_>,
    rng: &mut dyn RngCore,
) -> EdgeSet {
    let n = graph.node_count();
    let mut spanner = graph.empty_edge_set();
    if n == 0 {
        return spanner;
    }
    assert_eq!(alive.len(), n, "one liveness flag per vertex required");

    let alive_count = alive.iter().filter(|&&a| a).count().max(1);
    let sample_p = (alive_count as f64).powf(-0.5);

    // Every surviving vertex flips its sampling coin locally.
    let sampled: Vec<bool> = (0..n)
        .map(|v| alive[v] && rng.gen::<f64>() < sample_p)
        .collect();

    // Round 1: sampled vertices announce themselves.
    let inboxes = sim.exchange(|sender, _| {
        if sampled[sender.index()] {
            Some(sender.index())
        } else {
            None
        }
    });

    // Local step: every unsampled surviving vertex either joins the
    // smallest-id sampled neighbor (keeping that edge) or, if it heard no
    // center, keeps every edge to a surviving neighbor.
    // cluster_of[v] = Some(center) for clustered vertices.
    let mut cluster_of: Vec<Option<NodeId>> = vec![None; n];
    for v in 0..n {
        if !alive[v] {
            continue;
        }
        if sampled[v] {
            cluster_of[v] = Some(NodeId::new(v));
            continue;
        }
        let mut centers: Vec<usize> = inboxes[v]
            .iter()
            .filter(|&&(from, _)| alive[from.index()])
            .map(|&(_, c)| c)
            .collect();
        centers.sort_unstable();
        if let Some(&c) = centers.first() {
            cluster_of[v] = Some(NodeId::new(c));
            if let Some(eid) = graph.find_edge(NodeId::new(v), NodeId::new(c)) {
                spanner.insert(eid);
            }
        } else {
            // Unclustered: keep every edge to a surviving neighbor.
            for (u, eid) in graph.incident(NodeId::new(v)) {
                if alive[u.index()] {
                    spanner.insert(eid);
                }
            }
        }
    }

    // Round 2: every clustered vertex announces its cluster id; every
    // surviving vertex then keeps one edge (to its smallest-id neighbor) into
    // each adjacent foreign cluster.
    let announcements = sim.exchange(|sender, _| {
        if alive[sender.index()] {
            cluster_of[sender.index()].map(|c| c.index())
        } else {
            None
        }
    });
    for v in 0..n {
        if !alive[v] {
            continue;
        }
        let own = cluster_of[v];
        let mut best_per_cluster: std::collections::HashMap<usize, NodeId> =
            std::collections::HashMap::new();
        for &(from, cluster) in &announcements[v] {
            if !alive[from.index()] || Some(NodeId::new(cluster)) == own {
                continue;
            }
            best_per_cluster
                .entry(cluster)
                .and_modify(|cur| {
                    if from < *cur {
                        *cur = from;
                    }
                })
                .or_insert(from);
        }
        for (_, neighbor) in best_per_cluster {
            if let Some(eid) = graph.find_edge(NodeId::new(v), neighbor) {
                spanner.insert(eid);
            }
        }
    }
    spanner
}

/// The distributed conversion of Theorem 2.3: every vertex locally samples
/// whether it joins the oversized fault set `J`, the distributed 3-spanner
/// runs on `G \ J`, and the union over `α` iterations is returned.
pub fn distributed_fault_tolerant_spanner(
    graph: &Graph,
    config: &DistributedConversionConfig,
    rng: &mut dyn RngCore,
) -> DistributedSpanner {
    let n = graph.node_count();
    let params = config.conversion_params();
    let alpha = params.iterations_for(n);
    let p = params.sampling_probability();

    let mut union = graph.empty_edge_set();
    let mut stats = RoundStats::default();
    for _ in 0..alpha {
        // Local coin flip at every vertex; no communication needed.
        let alive: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() >= p).collect();
        let mut sim = Simulator::new(graph);
        let edges = distributed_three_spanner(graph, &alive, &mut sim, rng);
        union.union_with(&edges);
        stats.absorb(sim.stats());
    }
    DistributedSpanner {
        edges: union,
        iterations: alpha,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    #[should_panic]
    fn non_three_stretch_rejected() {
        DistributedConversionConfig::new(1, 5);
    }

    #[test]
    fn three_spanner_is_valid_on_random_graphs() {
        let mut r = rng(1);
        for _ in 0..5 {
            let g = generate::gnp(40, 0.2, generate::WeightKind::Unit, &mut r);
            let alive = vec![true; 40];
            let mut sim = Simulator::new(&g);
            let s = distributed_three_spanner(&g, &alive, &mut sim, &mut r);
            assert!(verify::is_k_spanner(&g, &s, 3.0), "not a 3-spanner");
            assert_eq!(sim.stats().rounds, 2);
        }
    }

    #[test]
    fn three_spanner_compresses_dense_graphs() {
        let mut r = rng(2);
        let g = generate::complete(60);
        let alive = vec![true; 60];
        let mut sim = Simulator::new(&g);
        let s = distributed_three_spanner(&g, &alive, &mut sim, &mut r);
        assert!(verify::is_k_spanner(&g, &s, 3.0));
        // Expected size O(n^{3/2}) = ~465, far below the 1770 edges of K_60.
        assert!(s.len() < 1200, "spanner too dense: {}", s.len());
    }

    #[test]
    fn three_spanner_ignores_dead_vertices() {
        let mut r = rng(3);
        let g = generate::gnp(30, 0.3, generate::WeightKind::Unit, &mut r);
        let mut alive = vec![true; 30];
        for dead in [3usize, 7, 11] {
            alive[dead] = false;
        }
        let mut sim = Simulator::new(&g);
        let s = distributed_three_spanner(&g, &alive, &mut sim, &mut r);
        for eid in s.iter() {
            let e = g.edge(eid);
            assert!(alive[e.u.index()] && alive[e.v.index()]);
        }
        // And it spans the survivors with stretch 3 — checked through a
        // fault-scoped session on the adopted artifact instead of an ad-hoc
        // subgraph + re-Dijkstra sweep.
        let artifact = ftspan_core::FtSpanner::from_edge_set(
            &g,
            s,
            "distributed-three-spanner",
            "one oversampling iteration of Theorem 2.3",
            ftspan_core::FaultModel::Vertex,
            3,
            3.0,
        )
        .unwrap();
        let session = artifact
            .under_faults(&[NodeId::new(3), NodeId::new(7), NodeId::new(11)])
            .unwrap();
        assert!(session.is_within_guarantee());
    }

    #[test]
    fn distributed_conversion_is_fault_tolerant() {
        let mut r = rng(4);
        let g = generate::gnp(22, 0.4, generate::WeightKind::Unit, &mut r);
        let cfg = DistributedConversionConfig::new(1, 3);
        let out = distributed_fault_tolerant_spanner(&g, &cfg, &mut r);
        // Fault tolerance, verified one session per fault set.
        let artifact = ftspan_core::FtSpanner::from_edge_set(
            &g,
            out.edges.clone(),
            "distributed-conversion",
            "Theorem 2.3 conversion",
            ftspan_core::FaultModel::Vertex,
            1,
            3.0,
        )
        .unwrap();
        for faults in ftspan_graph::faults::enumerate_fault_sets(g.node_count(), 1) {
            let session = artifact.under_faults(faults.nodes()).unwrap();
            assert!(
                session.is_within_guarantee(),
                "fault set {:?} broke the spanner",
                faults.nodes()
            );
        }
        assert_eq!(out.iterations, cfg.conversion_params().iterations_for(22));
        // Two communication rounds per iteration.
        assert_eq!(out.stats.rounds, out.iterations * 2);
    }

    #[test]
    fn round_count_scales_with_iterations() {
        let mut r = rng(5);
        let g = generate::gnp(20, 0.3, generate::WeightKind::Unit, &mut r);
        let few = DistributedConversionConfig::new(1, 3).with_iterations(5);
        let many = DistributedConversionConfig::new(1, 3).with_iterations(20);
        let out_few = distributed_fault_tolerant_spanner(&g, &few, &mut r);
        let out_many = distributed_fault_tolerant_spanner(&g, &many, &mut r);
        assert_eq!(out_few.stats.rounds, 5 * 2);
        assert_eq!(out_many.stats.rounds, 20 * 2);
        assert!(out_many.edges.len() >= out_few.edges.len());
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Graph::new(0);
        let cfg = DistributedConversionConfig::new(1, 3).with_iterations(3);
        let out = distributed_fault_tolerant_spanner(&g, &cfg, &mut rng(6));
        assert!(out.edges.is_empty());
    }
}
