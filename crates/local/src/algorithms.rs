//! [`FtSpannerAlgorithm`] implementations for the distributed constructions
//! (Theorem 2.3 and Theorem 3.9), mirroring `ftspan_core::algorithms` for the
//! LOCAL-model algorithms so the facade registry can serve centralized and
//! distributed constructions through one interface.

use crate::spanner::{distributed_fault_tolerant_spanner, DistributedConversionConfig};
use crate::two_spanner::{distributed_two_spanner, DistributedTwoSpannerConfig};
use ftspan_core::api::{
    FaultModel, FtSpannerAlgorithm, GraphFamily, GraphInput, SpannerEdges, SpannerReport,
    SpannerRequest,
};
use ftspan_core::{CoreError, Result};
use rand::RngCore;
use std::time::Instant;

/// Theorem 2.3: the distributed conversion, built on the constant-round
/// one-level clustering 3-spanner. The stretch is fixed at 3; iteration
/// knobs are honored.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedConversionAlgorithm;

impl FtSpannerAlgorithm for DistributedConversionAlgorithm {
    fn name(&self) -> &'static str {
        "distributed-conversion"
    }

    fn reference(&self) -> &'static str {
        "Theorem 2.3 / Corollary 2.4"
    }

    fn summary(&self) -> &'static str {
        "LOCAL-model conversion: local oversampling coins over a constant-round 3-spanner"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Undirected
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        if request.fault_model == FaultModel::Edge {
            return Err(CoreError::InvalidParameter {
                message: "the distributed conversion tolerates vertex faults only".to_string(),
            });
        }
        if (request.stretch - 3.0).abs() > 1e-9 {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "the distributed black box is a 3-spanner; requested stretch {} — \
                     use the centralized `conversion` for other stretches",
                    request.stretch
                ),
            });
        }
        Ok(())
    }

    fn guaranteed_stretch(&self, _request: &SpannerRequest) -> f64 {
        3.0
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_undirected(self.name())?;
        // The constant-round 3-spanner black box clusters by hops, not by
        // weight, so its stretch guarantee only holds on unit-length
        // graphs. Declaring stretch 3 over a weighted input would be a lie
        // the serving layer cannot detect. (Found by the adversarial
        // differential battery on the hyperbolic family.)
        if let Some((_, heavy)) = graph.edges().find(|(_, e)| e.weight != 1.0) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "the distributed conversion requires unit edge lengths (its 3-spanner \
                     black box clusters by hops); found weight {} on ({}, {}) — use the \
                     centralized `conversion` for weighted graphs",
                    heavy.weight,
                    heavy.u.index(),
                    heavy.v.index()
                ),
            });
        }
        let mut config =
            DistributedConversionConfig::new(request.faults, 3).with_scale(request.scale);
        if let Some(iterations) = request.iterations {
            config = config.with_iterations(iterations);
        }
        let start = Instant::now();
        let result = distributed_fault_tolerant_spanner(graph, &config, rng);
        let elapsed = start.elapsed();
        let cost = graph
            .edge_set_weight(&result.edges)
            .expect("constructed edges belong to the input graph");
        let provenance = format!(
            "Theorem 2.3 distributed conversion ({} iterations, {} LOCAL rounds, r = {})",
            result.iterations, result.stats.rounds, request.faults
        );
        let mut report = SpannerReport::new(
            self.name(),
            provenance,
            FaultModel::Vertex,
            request.faults,
            3.0,
            SpannerEdges::Undirected(result.edges),
            cost,
        );
        report.iterations = result.iterations;
        report.rounds = Some(result.stats.rounds);
        report.messages = Some(result.stats.messages);
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// Theorem 3.9 / Algorithm 2: the distributed `O(log n)`-approximation for
/// minimum-cost `r`-fault-tolerant 2-spanner. Honors the repetition,
/// inflation, cut-round and repair knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedTwoSpannerAlgorithm;

impl FtSpannerAlgorithm for DistributedTwoSpannerAlgorithm {
    fn name(&self) -> &'static str {
        "distributed-two-spanner"
    }

    fn reference(&self) -> &'static str {
        "Theorem 3.9 / Algorithm 2"
    }

    fn summary(&self) -> &'static str {
        "padded decomposition + per-cluster LPs + local rounding in O(log² n) rounds"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Directed
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        if request.fault_model == FaultModel::Edge {
            return Err(CoreError::InvalidParameter {
                message: "the distributed 2-spanner tolerates vertex faults only".to_string(),
            });
        }
        Ok(())
    }

    fn guaranteed_stretch(&self, _request: &SpannerRequest) -> f64 {
        2.0
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_directed(self.name())?;
        let mut config = DistributedTwoSpannerConfig::new(request.faults);
        if let Some(t) = request.repetitions {
            config = config.with_repetitions(t);
        }
        if let Some(c) = request.alpha_constant {
            config.alpha_constant = c;
        }
        config.max_cut_rounds = request.max_cut_rounds;
        config.repair = request.repair;
        let start = Instant::now();
        let result = distributed_two_spanner(graph, &config, rng)?;
        let elapsed = start.elapsed();
        let provenance = format!(
            "Theorem 3.9 distributed rounding ({} repetitions, {} LOCAL rounds, r = {})",
            result.repetitions, result.stats.rounds, request.faults
        );
        let mut report = SpannerReport::new(
            self.name(),
            provenance,
            FaultModel::Vertex,
            request.faults,
            2.0,
            SpannerEdges::Directed(result.arcs),
            result.cost,
        );
        report.iterations = result.repetitions;
        report.rounds = Some(result.stats.rounds);
        report.messages = Some(result.stats.messages);
        report.repaired_arcs = result.repaired_arcs;
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// The distributed algorithms this crate contributes to the registry.
pub fn local_algorithms() -> Vec<Box<dyn FtSpannerAlgorithm>> {
    vec![
        Box::new(DistributedConversionAlgorithm),
        Box::new(DistributedTwoSpannerAlgorithm),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn distributed_conversion_report_is_valid_and_accounts_rounds() {
        let mut r = rng(1);
        let g = generate::gnp(20, 0.4, generate::WeightKind::Unit, &mut r);
        let request = SpannerRequest::new(1);
        let report = DistributedConversionAlgorithm
            .build(GraphInput::from(&g), &request, &mut r)
            .unwrap();
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            3.0,
            1
        ));
        assert_eq!(report.rounds, Some(report.iterations * 2));
        assert!(report.messages.unwrap() > 0);
    }

    #[test]
    fn distributed_conversion_rejects_weighted_graphs() {
        // Pinned regression (adversarial battery, hyperbolic family): on a
        // weighted graph the hop-based 3-spanner black box can exceed its
        // declared stretch, so the build must refuse with a typed error
        // instead of reporting a guarantee it cannot honor.
        let mut r = rng(7);
        let g = generate::connected_gnp(
            12,
            0.4,
            generate::WeightKind::Uniform { min: 0.5, max: 2.0 },
            &mut r,
        );
        let request = SpannerRequest::new(1);
        let err = DistributedConversionAlgorithm
            .build(GraphInput::from(&g), &request, &mut r)
            .unwrap_err();
        match err {
            CoreError::InvalidParameter { message } => {
                assert!(message.contains("unit edge lengths"), "message: {message}")
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn distributed_conversion_rejects_other_stretches() {
        let request = SpannerRequest::new(1).with_stretch(5.0);
        assert!(DistributedConversionAlgorithm.supports(&request).is_err());
        let edge_request = SpannerRequest::new(1).with_fault_model(ftspan_core::FaultModel::Edge);
        assert!(DistributedConversionAlgorithm
            .supports(&edge_request)
            .is_err());
    }

    #[test]
    fn distributed_two_spanner_report_is_valid() {
        let mut r = rng(2);
        let g = generate::directed_gnp(9, 0.45, generate::WeightKind::Unit, &mut r);
        let request = SpannerRequest::new(1).with_repetitions(3);
        let report = DistributedTwoSpannerAlgorithm
            .build(GraphInput::from(&g), &request, &mut r)
            .unwrap();
        assert!(verify::is_ft_two_spanner(&g, report.arc_set().unwrap(), 1));
        assert_eq!(report.iterations, 3);
        assert!(report.rounds.unwrap() > 0);
        assert_eq!(report.stretch, 2.0);
    }

    #[test]
    fn local_algorithms_compose_with_the_core_registry() {
        let mut algorithms = ftspan_core::algorithms::core_algorithms();
        algorithms.extend(local_algorithms());
        let registry = ftspan_core::Registry::from_algorithms(algorithms);
        assert_eq!(registry.len(), 11);
        assert!(registry.get("distributed-conversion").is_some());
        assert!(registry.get("distributed-two-spanner").is_some());
    }
}
