//! Criterion benchmark for Experiments E1/E2: the Theorem 2.1 conversion
//! (Corollary 2.2 instantiation) at increasing fault budgets, driven through
//! the unified registry API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fault_tolerant_spanners::prelude::*;
use ftspan_graph::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_conversion(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generate::connected_gnp(80, 0.15, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("ft_conversion_n80_k3");
    group.sample_size(10);
    for r in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let builder = FtSpannerBuilder::new("conversion").faults(r).scale(0.25);
            let mut rng = ChaCha8Rng::seed_from_u64(r as u64);
            b.iter(|| {
                builder
                    .build_with_rng(GraphInput::from(&g), &mut rng)
                    .expect("the conversion accepts undirected inputs")
            });
        });
    }
    group.finish();
}

fn bench_conversion_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("ft_conversion_r2_k3_vs_n");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let g = generate::connected_gnp(
            n,
            (8.0 / n as f64).min(1.0),
            generate::WeightKind::Unit,
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let builder = FtSpannerBuilder::new("conversion").faults(2).scale(0.25);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            b.iter(|| {
                builder
                    .build_with_rng(GraphInput::from(g), &mut rng)
                    .expect("the conversion accepts undirected inputs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conversion, bench_conversion_vs_n);
criterion_main!(benches);
