//! Criterion benchmarks for the extension modules: the Thorup–Zwick black
//! box, the edge-fault conversion, the adaptive conversion, the greedy
//! 2-spanner cover heuristic (all through the registry API), and the graph
//! substrates (MST, components, vertex connectivity).

use criterion::{criterion_group, criterion_main, Criterion};
use fault_tolerant_spanners::prelude::*;
use ftspan_graph::{components, generate, tree};
use ftspan_spanners::{SpannerAlgorithm, ThorupZwickSpanner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_thorup_zwick(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let g = generate::gnp(150, 0.2, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("thorup_zwick");
    group.sample_size(10);
    group.bench_function("k2_stretch3/n=150", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        b.iter(|| ThorupZwickSpanner::new(2).build(&g, &mut r))
    });
    group.bench_function("k3_stretch5/n=150", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(43);
        b.iter(|| ThorupZwickSpanner::new(3).build(&g, &mut r))
    });
    group.finish();
}

fn bench_fault_models(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    let g = generate::connected_gnp(60, 0.15, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("fault_models");
    group.sample_size(10);
    group.bench_function("edge_fault_conversion/r=2", |b| {
        let builder = FtSpannerBuilder::new("conversion")
            .faults(2)
            .edge_faults()
            .scale(0.25);
        let mut r = ChaCha8Rng::seed_from_u64(45);
        b.iter(|| {
            builder
                .build_with_rng(GraphInput::from(&g), &mut r)
                .expect("the conversion accepts edge-fault requests")
        })
    });
    group.bench_function("adaptive_conversion/r=2", |b| {
        let builder = FtSpannerBuilder::new("adaptive").faults(2);
        let mut r = ChaCha8Rng::seed_from_u64(46);
        b.iter(|| {
            builder
                .build_with_rng(GraphInput::from(&g), &mut r)
                .expect("the adaptive conversion accepts undirected inputs")
        })
    });
    group.finish();
}

fn bench_greedy_cover(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(47);
    let g = generate::directed_gnp(
        40,
        0.3,
        generate::WeightKind::Uniform { min: 1.0, max: 5.0 },
        &mut rng,
    );
    let mut group = c.benchmark_group("greedy_cover");
    group.sample_size(10);
    for r in [0usize, 2] {
        group.bench_function(format!("r={r}/n=40"), |b| {
            let builder = FtSpannerBuilder::new("two-spanner-greedy").faults(r);
            let mut rng = ChaCha8Rng::seed_from_u64(48);
            b.iter(|| {
                builder
                    .build_with_rng(GraphInput::from(&g), &mut rng)
                    .expect("the greedy cover always succeeds")
            })
        });
    }
    group.finish();
}

fn bench_substrate_extensions(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(48);
    let g = generate::connected_gnp(
        300,
        0.05,
        generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
        &mut rng,
    );
    c.bench_function("minimum_spanning_forest/n=300", |b| {
        b.iter(|| tree::minimum_spanning_forest(&g))
    });
    c.bench_function("articulation_points/n=300", |b| {
        b.iter(|| components::articulation_points(&g))
    });
    let small = generate::connected_gnp(60, 0.15, generate::WeightKind::Unit, &mut rng);
    c.bench_function("vertex_connectivity/n=60", |b| {
        b.iter(|| components::vertex_connectivity(&small))
    });
}

criterion_group!(
    benches,
    bench_thorup_zwick,
    bench_fault_models,
    bench_greedy_cover,
    bench_substrate_extensions
);
criterion_main!(benches);
