//! Criterion benchmarks for the extension modules: the Thorup–Zwick black
//! box, the edge-fault conversion, the adaptive conversion, the greedy
//! 2-spanner cover heuristic, and the new graph substrates (MST, components,
//! vertex connectivity).

use criterion::{criterion_group, criterion_main, Criterion};
use ftspan_core::adaptive::{adaptive_fault_tolerant_spanner, AdaptiveConfig};
use ftspan_core::edge_faults::{edge_fault_tolerant_spanner, EdgeFaultParams};
use ftspan_core::two_spanner::greedy_ft_two_spanner;
use ftspan_graph::{components, generate, tree};
use ftspan_spanners::{GreedySpanner, SpannerAlgorithm, ThorupZwickSpanner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_thorup_zwick(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let g = generate::gnp(150, 0.2, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("thorup_zwick");
    group.sample_size(10);
    group.bench_function("k2_stretch3/n=150", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        b.iter(|| ThorupZwickSpanner::new(2).build(&g, &mut r))
    });
    group.bench_function("k3_stretch5/n=150", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(43);
        b.iter(|| ThorupZwickSpanner::new(3).build(&g, &mut r))
    });
    group.finish();
}

fn bench_fault_models(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    let g = generate::connected_gnp(60, 0.15, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("fault_models");
    group.sample_size(10);
    group.bench_function("edge_fault_conversion/r=2", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(45);
        let params = EdgeFaultParams::new(2).with_scale(0.25);
        b.iter(|| edge_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &params, &mut r))
    });
    group.bench_function("adaptive_conversion/r=2", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(46);
        let config = AdaptiveConfig::new(2, g.node_count());
        b.iter(|| adaptive_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &config, &mut r))
    });
    group.finish();
}

fn bench_greedy_cover(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(47);
    let g = generate::directed_gnp(40, 0.3, generate::WeightKind::Uniform { min: 1.0, max: 5.0 }, &mut rng);
    let mut group = c.benchmark_group("greedy_cover");
    group.sample_size(10);
    for r in [0usize, 2] {
        group.bench_function(format!("r={r}/n=40"), |b| {
            b.iter(|| greedy_ft_two_spanner(&g, r))
        });
    }
    group.finish();
}

fn bench_substrate_extensions(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(48);
    let g = generate::connected_gnp(
        300,
        0.05,
        generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
        &mut rng,
    );
    c.bench_function("minimum_spanning_forest/n=300", |b| {
        b.iter(|| tree::minimum_spanning_forest(&g))
    });
    c.bench_function("articulation_points/n=300", |b| {
        b.iter(|| components::articulation_points(&g))
    });
    let small = generate::connected_gnp(60, 0.15, generate::WeightKind::Unit, &mut rng);
    c.bench_function("vertex_connectivity/n=60", |b| {
        b.iter(|| components::vertex_connectivity(&small))
    });
}

criterion_group!(
    benches,
    bench_thorup_zwick,
    bench_fault_models,
    bench_greedy_cover,
    bench_substrate_extensions
);
criterion_main!(benches);
