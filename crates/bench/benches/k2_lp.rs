//! Criterion benchmark for Experiments E4/E5: the 2-spanner LP relaxations
//! (with and without knapsack-cover cuts) and the full Theorem 3.3 pipeline
//! (driven through the registry API).

use criterion::{criterion_group, criterion_main, Criterion};
use fault_tolerant_spanners::prelude::*;
use ftspan_core::two_spanner::{solve_relaxation, RelaxationConfig};
use ftspan_graph::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_relaxations(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let g = generate::directed_gnp(12, 0.4, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("k2_relaxation_n12_r2");
    group.sample_size(10);
    group.bench_function("lp3_no_cuts", |b| {
        b.iter(|| solve_relaxation(&g, &RelaxationConfig::new(2).without_knapsack_cover()).unwrap())
    });
    group.bench_function("lp4_knapsack_cover", |b| {
        b.iter(|| solve_relaxation(&g, &RelaxationConfig::new(2)).unwrap())
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let g = generate::directed_gnp(
        10,
        0.5,
        generate::WeightKind::Uniform { min: 1.0, max: 5.0 },
        &mut rng,
    );
    let mut group = c.benchmark_group("k2_theorem33_pipeline_n10");
    group.sample_size(10);
    for r in [1usize, 3] {
        group.bench_function(format!("r={r}"), |b| {
            let builder = FtSpannerBuilder::new("two-spanner-lp").faults(r);
            let mut rng = ChaCha8Rng::seed_from_u64(r as u64);
            b.iter(|| {
                builder
                    .build_with_rng(GraphInput::from(&g), &mut rng)
                    .expect("relaxation solvable")
            })
        });
    }
    group.finish();
}

fn bench_gap_gadget(c: &mut Criterion) {
    let mut group = c.benchmark_group("k2_gap_gadget_lp4");
    group.sample_size(10);
    for r in [4usize, 8, 16] {
        let g = generate::gap_gadget(r, 100.0).unwrap();
        group.bench_function(format!("r={r}"), |b| {
            b.iter(|| solve_relaxation(&g, &RelaxationConfig::new(r)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_relaxations,
    bench_full_pipeline,
    bench_gap_gadget
);
criterion_main!(benches);
