//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//! the oversampling probability, the iteration budget of the conversion, and
//! the knapsack-cover inequalities. The construction runs go through the
//! registry API; the relaxation internals are benched directly.

use criterion::{criterion_group, criterion_main, Criterion};
use fault_tolerant_spanners::prelude::*;
use ftspan_core::two_spanner::{solve_relaxation, RelaxationConfig};
use ftspan_graph::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Oversampling (`|J| ≈ (1 − 1/r)·n`, Theorem 2.1) versus sampling fault sets
/// of size exactly `r` (the naive union baseline) at the same iteration
/// budget.
fn bench_sampling_ablation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let g = generate::connected_gnp(60, 0.12, generate::WeightKind::Unit, &mut rng);
    let iterations = 100usize;
    let mut group = c.benchmark_group("ablation_sampling_n60_r2");
    group.sample_size(10);
    group.bench_function("oversampled_fault_sets", |b| {
        let builder = FtSpannerBuilder::new("conversion")
            .faults(2)
            .iterations(iterations);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        b.iter(|| {
            builder
                .build_with_rng(GraphInput::from(&g), &mut rng)
                .expect("the conversion accepts undirected inputs")
        })
    });
    group.bench_function("exact_size_fault_sets", |b| {
        let builder = FtSpannerBuilder::new("clpr09")
            .faults(2)
            .samples(iterations);
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        b.iter(|| {
            builder
                .build_with_rng(GraphInput::from(&g), &mut rng)
                .expect("the CLPR09 baseline accepts undirected inputs")
        })
    });
    group.finish();
}

/// How the iteration budget (the constant in `α = Θ(r³ log n)`) affects the
/// conversion's running time; the E1 experiment reports the corresponding
/// validity rates.
fn bench_alpha_ablation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    let g = generate::connected_gnp(60, 0.12, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("ablation_alpha_n60_r2");
    group.sample_size(10);
    for scale in [0.1f64, 0.25, 1.0] {
        group.bench_function(format!("scale={scale}"), |b| {
            let builder = FtSpannerBuilder::new("conversion").faults(2).scale(scale);
            let mut rng = ChaCha8Rng::seed_from_u64(45);
            b.iter(|| {
                builder
                    .build_with_rng(GraphInput::from(&g), &mut rng)
                    .expect("the conversion accepts undirected inputs")
            })
        });
    }
    group.finish();
}

/// Cost of the knapsack-cover separation: LP (3) versus LP (4) on the gadget
/// that actually needs the cuts.
fn bench_knapsack_cover_ablation(c: &mut Criterion) {
    let g = generate::gap_gadget(6, 100.0).unwrap();
    let mut group = c.benchmark_group("ablation_knapsack_cover_gadget_r6");
    group.sample_size(10);
    group.bench_function("lp3", |b| {
        b.iter(|| solve_relaxation(&g, &RelaxationConfig::new(6).without_knapsack_cover()).unwrap())
    });
    group.bench_function("lp4", |b| {
        b.iter(|| solve_relaxation(&g, &RelaxationConfig::new(6)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampling_ablation,
    bench_alpha_ablation,
    bench_knapsack_cover_ablation
);
criterion_main!(benches);
