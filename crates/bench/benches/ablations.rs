//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//! the oversampling probability, the iteration budget of the conversion, and
//! the knapsack-cover inequalities.

use criterion::{criterion_group, criterion_main, Criterion};
use ftspan_core::baselines::ClprStyleBaseline;
use ftspan_core::conversion::{ConversionParams, FaultTolerantConverter};
use ftspan_core::two_spanner::{solve_relaxation, RelaxationConfig};
use ftspan_graph::generate;
use ftspan_spanners::GreedySpanner;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Oversampling (`|J| ≈ (1 − 1/r)·n`, Theorem 2.1) versus sampling fault sets
/// of size exactly `r` (the naive union baseline) at the same iteration
/// budget.
fn bench_sampling_ablation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let g = generate::connected_gnp(60, 0.12, generate::WeightKind::Unit, &mut rng);
    let iterations = 100usize;
    let mut group = c.benchmark_group("ablation_sampling_n60_r2");
    group.sample_size(10);
    group.bench_function("oversampled_fault_sets", |b| {
        let params = ConversionParams::new(2).with_iterations(iterations);
        let converter = FaultTolerantConverter::new(params);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        b.iter(|| converter.build(&g, &GreedySpanner::new(3.0), &mut rng))
    });
    group.bench_function("exact_size_fault_sets", |b| {
        let baseline = ClprStyleBaseline::sampled(2, iterations);
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        b.iter(|| baseline.build(&g, &GreedySpanner::new(3.0), &mut rng))
    });
    group.finish();
}

/// How the iteration budget (the constant in `α = Θ(r³ log n)`) affects the
/// conversion's running time; the E1 experiment reports the corresponding
/// validity rates.
fn bench_alpha_ablation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    let g = generate::connected_gnp(60, 0.12, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("ablation_alpha_n60_r2");
    group.sample_size(10);
    for scale in [0.1f64, 0.25, 1.0] {
        group.bench_function(format!("scale={scale}"), |b| {
            let params = ConversionParams::new(2).with_scale(scale);
            let converter = FaultTolerantConverter::new(params);
            let mut rng = ChaCha8Rng::seed_from_u64(45);
            b.iter(|| converter.build(&g, &GreedySpanner::new(3.0), &mut rng))
        });
    }
    group.finish();
}

/// Cost of the knapsack-cover separation: LP (3) versus LP (4) on the gadget
/// that actually needs the cuts.
fn bench_knapsack_cover_ablation(c: &mut Criterion) {
    let g = generate::gap_gadget(6, 100.0).unwrap();
    let mut group = c.benchmark_group("ablation_knapsack_cover_gadget_r6");
    group.sample_size(10);
    group.bench_function("lp3", |b| {
        b.iter(|| {
            solve_relaxation(&g, &RelaxationConfig::new(6).without_knapsack_cover()).unwrap()
        })
    });
    group.bench_function("lp4", |b| {
        b.iter(|| solve_relaxation(&g, &RelaxationConfig::new(6)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampling_ablation,
    bench_alpha_ablation,
    bench_knapsack_cover_ablation
);
criterion_main!(benches);
