//! Criterion benchmarks for the substrates: shortest paths, edge sets and the
//! classic spanner constructions the conversion theorem consumes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftspan_graph::{generate, shortest_path, EdgeId, EdgeSet, NodeId};
use ftspan_spanners::{BaswanaSenSpanner, GreedySpanner, SpannerAlgorithm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_shortest_paths(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = generate::connected_gnp(
        300,
        0.05,
        generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
        &mut rng,
    );
    c.bench_function("dijkstra/n=300", |b| {
        b.iter(|| shortest_path::dijkstra(&g, NodeId::new(0)).unwrap())
    });
    let dead: Vec<bool> = (0..g.node_count()).map(|i| i % 10 == 0).collect();
    c.bench_function("dijkstra_avoiding/n=300", |b| {
        b.iter(|| shortest_path::dijkstra_avoiding(&g, NodeId::new(1), &dead).unwrap())
    });
}

fn bench_edge_sets(c: &mut Criterion) {
    let mut a = EdgeSet::new(100_000);
    let mut bset = EdgeSet::new(100_000);
    for i in (0..100_000).step_by(3) {
        a.insert(EdgeId::new(i));
    }
    for i in (0..100_000).step_by(5) {
        bset.insert(EdgeId::new(i));
    }
    c.bench_function("edge_set_union/100k", |b| {
        b.iter_batched(
            || a.clone(),
            |mut x| {
                x.union_with(&bset);
                x
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("edge_set_iterate/100k", |b| {
        b.iter(|| a.iter().map(|e| e.index()).sum::<usize>())
    });
}

fn bench_classic_spanners(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generate::gnp(150, 0.2, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("classic_spanners");
    group.sample_size(10);
    group.bench_function("greedy_k3/n=150", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| GreedySpanner::new(3.0).build(&g, &mut r))
    });
    group.bench_function("baswana_sen_k2/n=150", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| BaswanaSenSpanner::new(2).build(&g, &mut r))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shortest_paths,
    bench_edge_sets,
    bench_classic_spanners
);
criterion_main!(benches);
