//! Criterion benchmark for Experiment E7: the LOCAL-model algorithms. The
//! full distributed constructions run through the registry API; the
//! decomposition and single-shot 3-spanner internals are benched directly.

use criterion::{criterion_group, criterion_main, Criterion};
use fault_tolerant_spanners::prelude::*;
use ftspan_graph::generate;
use ftspan_local::padded::{sample_padded_decomposition, PaddedDecompositionConfig};
use ftspan_local::simulator::Simulator;
use ftspan_local::spanner::distributed_three_spanner;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_padded_decomposition(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let g = generate::connected_gnp(200, 0.04, generate::WeightKind::Unit, &mut rng);
    c.bench_function("padded_decomposition/n=200", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        b.iter(|| sample_padded_decomposition(&g, &PaddedDecompositionConfig::default(), &mut rng))
    });
}

fn bench_distributed_three_spanner(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let g = generate::connected_gnp(200, 0.06, generate::WeightKind::Unit, &mut rng);
    let alive = vec![true; g.node_count()];
    c.bench_function("distributed_three_spanner/n=200", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        b.iter(|| {
            let mut sim = Simulator::new(&g);
            distributed_three_spanner(&g, &alive, &mut sim, &mut rng)
        })
    });
}

fn bench_distributed_conversion(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(35);
    let g = generate::connected_gnp(60, 0.12, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("distributed_conversion_n60");
    group.sample_size(10);
    group.bench_function("r=1_50iters", |b| {
        let builder = FtSpannerBuilder::new("distributed-conversion")
            .faults(1)
            .iterations(50);
        let mut rng = ChaCha8Rng::seed_from_u64(36);
        b.iter(|| {
            builder
                .build_with_rng(GraphInput::from(&g), &mut rng)
                .expect("the distributed conversion accepts stretch-3 requests")
        })
    });
    group.finish();
}

fn bench_distributed_two_spanner(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(37);
    let g = generate::directed_gnp(10, 0.4, generate::WeightKind::Unit, &mut rng);
    let mut group = c.benchmark_group("distributed_two_spanner_n10");
    group.sample_size(10);
    group.bench_function("r=1_t=3", |b| {
        let builder = FtSpannerBuilder::new("distributed-two-spanner")
            .faults(1)
            .repetitions(3);
        let mut rng = ChaCha8Rng::seed_from_u64(38);
        b.iter(|| {
            builder
                .build_with_rng(GraphInput::from(&g), &mut rng)
                .expect("cluster LPs solvable")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_padded_decomposition,
    bench_distributed_three_spanner,
    bench_distributed_conversion,
    bench_distributed_two_spanner
);
criterion_main!(benches);
