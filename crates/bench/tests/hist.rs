//! Differential battery for [`ftspan_bench::hist::Histogram`]: every
//! reported quantile is checked against the exact order statistic of the
//! same stream, with the histogram's advertised error bound — exact below
//! 128, at most one sub-bucket (~1.6%) of relative error above — enforced
//! per query, across several value distributions, plus the q = 0 / q = 1
//! edges and merge identities.

use ftspan_bench::hist::Histogram;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The exact rank the histogram promises: the smallest value such that at
/// least `ceil(q * count)` recorded values fall at or below it.
fn exact_order_statistic(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// A histogram quantile may overshoot the exact order statistic by at most
/// one sub-bucket width: `exact <= got <= exact * (1 + 1/64) + 1`.
fn assert_within_bound(got: u64, exact: u64, context: &str) {
    assert!(
        got >= exact,
        "{context}: quantile {got} undershoots the exact order statistic {exact}"
    );
    let ceiling = (exact as f64 * (1.0 + 1.0 / 64.0)) + 1.0;
    assert!(
        (got as f64) <= ceiling,
        "{context}: quantile {got} overshoots the exact order statistic {exact} \
         past the 1/64 bucket bound ({ceiling})"
    );
}

const QUANTILES: [f64; 10] = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];

/// Seeded streams over very different scales: exact-range small values,
/// mid-range uniforms, heavy-tailed octave jumps, and a mixture.
fn streams(rng: &mut ChaCha8Rng) -> Vec<(&'static str, Vec<u64>)> {
    let small: Vec<u64> = (0..4000).map(|_| rng.gen_range(0..128u64)).collect();
    let mid: Vec<u64> = (0..4000)
        .map(|_| rng.gen_range(100..1_000_000u64))
        .collect();
    let heavy: Vec<u64> = (0..4000)
        .map(|_| {
            let octave = rng.gen_range(0..50u32);
            let base = 1u64 << octave;
            base + rng.gen_range(0..base.max(2))
        })
        .collect();
    let mixed: Vec<u64> = small
        .iter()
        .zip(&mid)
        .zip(&heavy)
        .flat_map(|((&a, &b), &c)| [a, b, c])
        .collect();
    vec![
        ("small-exact", small),
        ("mid-uniform", mid),
        ("heavy-octaves", heavy),
        ("mixed", mixed),
    ]
}

#[test]
fn quantiles_match_exact_order_statistics_within_the_bucket_bound() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4157);
    for (name, values) in streams(&mut rng) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in QUANTILES {
            let exact = exact_order_statistic(&sorted, q);
            let got = h.quantile(q);
            assert_within_bound(got, exact, &format!("{name} q={q}"));
        }
        // Values below 128 land in exact buckets: the differential is
        // equality there, not just the bound.
        if name == "small-exact" {
            for q in QUANTILES {
                assert_eq!(
                    h.quantile(q),
                    exact_order_statistic(&sorted, q),
                    "{name} q={q}: sub-128 values must be exact"
                );
            }
        }
    }
}

#[test]
fn q0_and_q1_edges_anchor_to_the_observed_extrema() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4158);
    for (name, values) in streams(&mut rng) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        // q = 1 is clamped to the observed maximum exactly.
        assert_eq!(h.quantile(1.0), max, "{name}: q=1 must equal max()");
        assert_eq!(h.max(), max, "{name}: max()");
        assert_eq!(h.min(), min, "{name}: min()");
        // q = 0 reports rank 1 — the minimum, up to its bucket width.
        assert_within_bound(h.quantile(0.0), min, &format!("{name} q=0"));
        // Out-of-range inputs clamp to the edges instead of panicking.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0), "{name}: q<0 clamps");
        assert_eq!(h.quantile(7.0), h.quantile(1.0), "{name}: q>1 clamps");
    }
}

#[test]
fn merging_an_empty_histogram_changes_nothing_in_either_direction() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4159);
    let values: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..5_000_000u64)).collect();
    let mut full = Histogram::new();
    for &v in &values {
        full.record(v);
    }
    let reference = full.clone();

    // full.merge(empty): a no-op — count, extrema, mean and every quantile.
    full.merge(&Histogram::new());
    assert_eq!(full.count(), reference.count());
    assert_eq!(full.min(), reference.min());
    assert_eq!(full.max(), reference.max());
    assert_eq!(full.mean(), reference.mean());
    for q in QUANTILES {
        assert_eq!(full.quantile(q), reference.quantile(q), "q={q}");
    }

    // empty.merge(full): adopts the extrema without corrupting min (the
    // empty sentinel min is u64::MAX and must not leak through).
    let mut empty = Histogram::new();
    empty.merge(&reference);
    assert_eq!(empty.count(), reference.count());
    assert_eq!(empty.min(), reference.min());
    assert_eq!(empty.max(), reference.max());
    assert_eq!(empty.mean(), reference.mean());
    for q in QUANTILES {
        assert_eq!(empty.quantile(q), reference.quantile(q), "q={q}");
    }

    // empty.merge(empty) stays empty and well-defined.
    let mut both = Histogram::new();
    both.merge(&Histogram::new());
    assert_eq!(both.count(), 0);
    assert_eq!(both.min(), 0);
    assert_eq!(both.max(), 0);
    assert_eq!(both.quantile(0.5), 0);
}

#[test]
fn merged_shards_agree_with_one_histogram_over_the_whole_stream() {
    // The load generator's actual usage: per-connection histograms merged
    // at the end must answer like one histogram that saw everything.
    let mut rng = ChaCha8Rng::seed_from_u64(0x415A);
    let mut whole = Histogram::new();
    let mut shards: Vec<Histogram> = (0..7).map(|_| Histogram::new()).collect();
    for i in 0..10_000usize {
        let v = match i % 3 {
            0 => rng.gen_range(0..100u64),
            1 => rng.gen_range(100..50_000u64),
            _ => 1u64 << rng.gen_range(10..40u32),
        };
        whole.record(v);
        shards[i % 7].record(v);
    }
    let mut merged = Histogram::new();
    for shard in &shards {
        merged.merge(shard);
    }
    assert_eq!(merged.count(), whole.count());
    assert_eq!(merged.min(), whole.min());
    assert_eq!(merged.max(), whole.max());
    assert_eq!(merged.mean(), whole.mean());
    for q in QUANTILES {
        assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
    }
}
