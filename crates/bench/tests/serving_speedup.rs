//! Acceptance pins for the serving planner, on the same workload as the
//! `serve-repeated-faults` scenario:
//!
//! * the planned batch is **at least 2x faster** than a naive
//!   per-query-session run of the same batch (the real ratio is far larger;
//!   2x is the generous floor so scheduler noise cannot flake the test);
//! * the results are **byte-identical** to the naive run at worker counts
//!   1/2/8 and any source-cache capacity, including 0 (cache off).

use ftspan_bench::scenarios::{repeated_fault_workload, Profile, ScenarioConfig};
use std::time::{Duration, Instant};

fn best_of<F: FnMut() -> Duration>(runs: usize, mut f: F) -> Duration {
    (0..runs).map(|_| f()).min().expect("runs >= 1")
}

#[test]
fn planner_is_at_least_2x_faster_than_naive_per_query_sessions() {
    // One worker on both sides: the measured gap is session/tree reuse, not
    // parallelism.
    let config = ScenarioConfig {
        profile: Profile::Ci,
        seed: 2011,
        threads: Some(1),
        repeats: 1,
    };
    let (engine, _, queries) = repeated_fault_workload(&config, 42);

    let mut naive_results = Vec::new();
    let naive = best_of(3, || {
        let start = Instant::now();
        naive_results = engine.run_batch_naive(&queries);
        start.elapsed()
    });
    let mut planned_results = Vec::new();
    let planned = best_of(3, || {
        let start = Instant::now();
        planned_results = engine.run_batch(&queries);
        start.elapsed()
    });

    assert_eq!(
        naive_results, planned_results,
        "planner changed the batch results"
    );
    assert!(
        planned * 2 <= naive,
        "planned batch is not 2x faster: planned {planned:?} vs naive {naive:?}"
    );
}

#[test]
fn planned_results_are_identical_at_any_worker_count_and_cache_capacity() {
    let config = ScenarioConfig {
        profile: Profile::Ci,
        seed: 2011,
        threads: Some(1),
        repeats: 1,
    };
    let (engine, _, queries) = repeated_fault_workload(&config, 7);
    let reference = engine.run_batch_naive(&queries);
    for workers in [1usize, 2, 8] {
        for capacity in [0usize, 1, 3, 64] {
            let got = engine
                .clone()
                .with_workers(workers)
                .with_source_cache_capacity(capacity)
                .run_batch(&queries);
            assert_eq!(
                reference, got,
                "results diverged at workers={workers}, capacity={capacity}"
            );
        }
    }
}
