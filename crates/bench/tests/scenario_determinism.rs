//! Scenario digests are a pure function of the seed: identical across
//! repeated runs and across worker counts (the property the CI perf gate's
//! baseline relies on).

use ftspan_bench::scenarios::{self, Profile, ScenarioConfig};

/// The cheap construction scenarios plus the serving scenarios — enough to
/// cover every digest path (undirected, directed, engine, planner, store)
/// while keeping the suite fast. The full-suite sweep lives in
/// `bench_runner` itself.
const PINNED: [&str; 13] = [
    "conversion-gnp",
    "conversion-grid",
    "two-spanner-greedy-gnp",
    "engine-queries",
    "serve-repeated-faults",
    "serve-zipf-sources",
    "serve-store-cold-load",
    "shard-build",
    "serve-sharded-batch",
    "construct-large-gnm",
    "sssp-large",
    "delta-replay",
    "serve-under-churn",
];

#[test]
fn digests_are_identical_across_worker_counts() {
    for name in PINNED {
        let scenario = scenarios::find(name).expect("pinned scenario exists");
        let mut digests = Vec::new();
        for threads in [1usize, 2, 8] {
            let config = ScenarioConfig {
                profile: Profile::Ci,
                seed: 2011,
                threads: Some(threads),
                repeats: 1,
            };
            digests.push(scenario.run(&config).digest);
        }
        assert_eq!(digests[0], digests[1], "{name}: threads 1 vs 2");
        assert_eq!(digests[0], digests[2], "{name}: threads 1 vs 8");
    }
}

#[test]
fn digests_are_identical_across_repeated_runs() {
    let config = ScenarioConfig {
        profile: Profile::Ci,
        seed: 7,
        threads: None,
        repeats: 1,
    };
    for name in PINNED {
        let scenario = scenarios::find(name).expect("pinned scenario exists");
        let a = scenario.run(&config);
        let b = scenario.run(&config);
        assert_eq!(a.digest, b.digest, "{name}: repeated run changed digest");
        assert_eq!(a.spanner_edges, b.spanner_edges);
    }
}

#[test]
fn digests_depend_on_the_seed() {
    let scenario = scenarios::find("conversion-gnp").unwrap();
    let with_seed = |seed| {
        scenario
            .run(&ScenarioConfig {
                profile: Profile::Ci,
                seed,
                threads: Some(2),
                repeats: 1,
            })
            .digest
    };
    assert_ne!(with_seed(1), with_seed(2));
}
