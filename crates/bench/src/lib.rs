//! Shared infrastructure for the experiment binaries and Criterion benches.
//!
//! Every experiment binary (one per experiment of DESIGN.md's index, E1–E11)
//! prints an aligned table to stdout and writes the same rows as CSV under
//! `target/experiments/`, so EXPERIMENTS.md can quote them directly.
//!
//! The [`scenarios`] module is the structured counterpart: a seeded, named
//! perf-scenario suite whose `bench_runner` binary emits machine-readable
//! `BENCH.json` results and gates CI against a checked-in baseline.

pub mod hist;
pub mod scenarios;

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple experiment table: named columns, rows of values, aligned text
/// output plus CSV export.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given experiment name and column headers.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells must match the number of columns.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Convenience for building a row out of displayable values.
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and writes it as CSV under
    /// `target/experiments/<name>.csv`.
    pub fn print_and_save(&self) {
        println!("{}", self.render());
        if let Err(e) = self.save_csv() {
            eprintln!("warning: could not save CSV for {}: {e}", self.name);
        }
    }

    /// Writes the table as CSV and returns the path.
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut file = fs::File::create(&path)?;
        writeln!(file, "{}", self.columns.join(","))?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a float with a fixed number of decimals (shared by experiments).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Parses a `--seed <N>` (or `--seed=<N>`) command-line argument, falling
/// back to the experiment's historical constant so default runs reproduce
/// the published tables while `--seed` makes runs comparable across
/// machines.
///
/// # Panics
///
/// Panics with a usage message if `--seed` is present but malformed.
pub fn seed_from_args(default: u64) -> u64 {
    seed_from(std::env::args().skip(1), default)
}

fn seed_from<I: Iterator<Item = String>>(mut args: I, default: u64) -> u64 {
    while let Some(arg) = args.next() {
        let value = if arg == "--seed" {
            args.next()
        } else if let Some(rest) = arg.strip_prefix("--seed=") {
            Some(rest.to_string())
        } else {
            continue;
        };
        let value = value.unwrap_or_else(|| panic!("--seed requires a value (u64)"));
        return value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("--seed expects a u64, got `{value}`"));
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new("demo", &["n", "edges", "ratio"]);
        t.row(&["10", "45", "1.50"]);
        t.row(&["100", "4950", "12.25"]);
        let text = t.render();
        assert!(text.contains("demo"));
        assert!(text.contains("4950"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_row_length_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }

    #[test]
    fn seed_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(seed_from(args(&[]).into_iter(), 7), 7);
        assert_eq!(seed_from(args(&["--seed", "42"]).into_iter(), 7), 42);
        assert_eq!(seed_from(args(&["--seed=43"]).into_iter(), 7), 43);
        assert_eq!(seed_from(args(&["--other", "1"]).into_iter(), 7), 7);
    }

    #[test]
    #[should_panic]
    fn malformed_seed_panics() {
        seed_from(["--seed".to_string(), "xyz".to_string()].into_iter(), 7);
    }
}
