//! The seeded perf-scenario suite behind `bench_runner` and the CI
//! `perf-smoke` gate.
//!
//! A **scenario** is a named, fully seeded workload: a graph family at a
//! profile-dependent size, a registry algorithm (or the serving [`Engine`]),
//! and fixed request knobs. Running one produces a [`ScenarioResult`] with
//! wall-clock time, throughput (input edges/sec for constructions,
//! queries/sec for serving) and a **digest** — an FNV-1a hash of the
//! scenario's semantic output (selected edges, costs, query answers). The
//! digest is what the determinism suite pins: for a fixed seed it must be
//! identical across runs *and across worker counts*.
//!
//! Two [`Profile`]s exist: [`Profile::Ci`] (small sizes, seconds total — what
//! the CI gate runs) and [`Profile::Full`] (larger sizes for tracking real
//! trends). [`run_all`] executes every scenario; [`BenchReport`] serializes
//! the results as `BENCH.json` (dependency-free writer and reader) and
//! [`compare`] implements the regression gate: any scenario slower than
//! baseline by more than the tolerance fails.
//!
//! Re-baseline with:
//!
//! ```text
//! cargo run --release -p ftspan-bench --bin bench_runner -- --profile ci --out bench/baseline.json
//! ```

use fault_tolerant_spanners::prelude::*;
use fault_tolerant_spanners::{ArtifactStore, Engine, Query, QueryOutcome};
use ftspan_graph::{DiGraph, Graph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Which sizes the suite runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small sizes with fixed seeds: the CI perf-smoke gate.
    Ci,
    /// Larger sizes for tracking real performance trends.
    Full,
}

impl Profile {
    /// Stable name (accepted by [`Profile::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Profile::Ci => "ci",
            Profile::Full => "full",
        }
    }

    /// Looks a profile up by name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "ci" => Some(Profile::Ci),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a suite run is configured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Size profile.
    pub profile: Profile,
    /// Base seed; each scenario derives its own stream from
    /// `seed ^ fnv1a(name)`, so scenarios are independent of suite order.
    pub seed: u64,
    /// Worker threads for constructions and the engine (`None` = one per
    /// available CPU). Digests are identical at any worker count.
    pub threads: Option<usize>,
    /// Measurement repeats per scenario; the reported wall-clock is the
    /// **minimum** over repeats (best-of-N), which is what makes millisecond
    /// scenarios stable enough for a 25% gate. Digests must agree across
    /// repeats (enforced at run time). Clamped to at least 1.
    pub repeats: usize,
}

impl ScenarioConfig {
    /// The default configuration for a profile (seed 2011, auto threads,
    /// best-of-3 timing).
    pub fn new(profile: Profile) -> Self {
        ScenarioConfig {
            profile,
            seed: 2011,
            threads: None,
            repeats: 3,
        }
    }
}

/// The measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Wall-clock time of the measured section, in milliseconds.
    pub wall_ms: f64,
    /// Vertices of the input graph.
    pub input_nodes: usize,
    /// Edges (or arcs) of the input graph.
    pub input_edges: usize,
    /// Edges (or arcs) selected by the construction (0 for serving
    /// scenarios).
    pub spanner_edges: usize,
    /// Input edges processed per second (construction scenarios).
    pub edges_per_sec: Option<f64>,
    /// Queries answered per second (serving scenarios).
    pub queries_per_sec: Option<f64>,
    /// Peak resident set size of the bench process when the scenario
    /// finished, in kilobytes (`VmHWM` from `/proc/self/status`). `None`
    /// off Linux. Process-wide and monotone over a suite run, so within one
    /// `BENCH.json` it is the large-n scenarios' number that is meaningful;
    /// it is recorded, not gated.
    pub peak_rss_kb: Option<u64>,
    /// FNV-1a digest of the semantic output; seed-stable and worker-count
    /// invariant.
    pub digest: String,
}

/// Peak resident set size of this process in kilobytes, read from the
/// `VmHWM` line of `/proc/self/status`. Dependency-free; `None` on
/// platforms without procfs.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// FNV-1a, the workspace's dependency-free digest.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn fnv1a_str(s: &str) -> u64 {
    let mut h = Fnv::new();
    h.write_bytes(s.as_bytes());
    h.finish()
}

/// The graph family a scenario constructs on.
#[derive(Debug, Clone, Copy)]
enum Family {
    /// `connected_gnp(n, p)`.
    Gnp,
    /// `grid(side, side)`.
    Grid,
    /// `random_near_regular(n, degree)` — the bounded-degree family.
    NearRegular,
    /// [`GeneratorSpec::PlanarMesh`] — the road-network-like jittered mesh.
    PlanarMesh,
    /// [`GeneratorSpec::Hyperbolic`] — heavy-tailed degrees, tight core.
    Hyperbolic,
    /// `directed_gnp(n, p)` for the 2-spanner problem.
    DirectedGnp,
}

/// What a scenario measures.
#[derive(Debug, Clone, Copy)]
enum Workload {
    /// One registry construction on one family.
    Construction {
        algorithm: &'static str,
        family: Family,
        faults: usize,
        /// `Some(s)` switches sampled enumeration/verification on.
        samples: Option<usize>,
    },
    /// Build one artifact, then answer a batch of queries through the
    /// [`Engine`].
    EngineThroughput,
    /// The planner's home turf: a large batch in which thousands of queries
    /// share a handful of fault scopes and sources, served through grouped
    /// sessions and the per-source cache.
    ServeRepeatedFaults,
    /// A batch whose sources follow a Zipf-like popularity distribution
    /// (few hot sources, a long cold tail) under a few fault scopes.
    ServeZipfSources,
    /// Cold serving startup: load a directory of binary `.ftspan` artifacts
    /// through an [`ArtifactStore`] into a fresh engine and answer a first
    /// mixed batch.
    ServeStoreColdLoad,
    /// End-to-end network serving: an in-process `ftspan-net` server on a
    /// loopback TCP socket, a client streaming the batch through the framed
    /// wire protocol, measured round trip — frames, queue, workers, planner.
    ServeNetThroughput,
    /// The whole sharded construction pipeline: seeded partition, per-shard
    /// spanner builds and boundary-overlay assembly.
    ShardBuild,
    /// Scatter-gather serving: a repeated-scope batch answered through a
    /// sharded artifact (per-shard sessions plus the boundary overlay).
    ServeShardedBatch,
    /// Large-n construction through the streaming input path: a seeded
    /// G(n, m) [`GeneratorSpec`] fed straight to
    /// [`FtSpannerBuilder::on_graph`], CSR packed once at the boundary,
    /// iteration-capped conversion on top of the Baswana–Sen black box.
    LargeConstruction,
    /// Large-n shortest paths: repeated [`sssp_into`] sweeps over a
    /// generated CSR — the bucket-queue strategy's home turf (the automatic
    /// strategy choice picks buckets at these sizes).
    ///
    /// [`sssp_into`]: ftspan_graph::csr::CsrSubgraph::sssp_into
    LargeSssp,
    /// The dynamic-artifact maintenance loop: a seeded edge-delta stream
    /// applied round by round through [`DynamicArtifact::apply`] under the
    /// default patch-vs-rebuild policy — the cost of keeping an artifact
    /// fresh without serving in the way.
    DeltaReplay,
    /// Serving under churn: query batches streamed through a loopback
    /// `ftspan-net` server, interleaved with `ApplyDeltas` frames that warm-
    /// swap the served version between batches — the full read/write wire
    /// path.
    ServeUnderChurn,
}

/// A named, seeded benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable name (key of `BENCH.json` and the baseline).
    pub name: &'static str,
    /// One-line description shown by `bench_runner --list`.
    pub description: &'static str,
    workload: Workload,
}

/// Every scenario of the suite, in run order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "conversion-gnp",
            description: "Theorem 2.1 conversion (greedy black box, r = 1) on connected G(n, p)",
            workload: Workload::Construction {
                algorithm: "conversion",
                family: Family::Gnp,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "conversion-grid",
            description: "Theorem 2.1 conversion (r = 1) on a square grid",
            workload: Workload::Construction {
                algorithm: "conversion",
                family: Family::Grid,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "conversion-regular",
            description: "Theorem 2.1 conversion (r = 1) on a bounded-degree near-regular graph",
            workload: Workload::Construction {
                algorithm: "conversion",
                family: Family::NearRegular,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "construct-planar-mesh",
            description: "Theorem 2.1 conversion (r = 1) on a road-network-like jittered planar mesh",
            workload: Workload::Construction {
                algorithm: "conversion",
                family: Family::PlanarMesh,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "construct-hyperbolic",
            description: "Theorem 2.1 conversion (r = 1) on a hyperbolic random graph (heavy-tailed degrees)",
            workload: Workload::Construction {
                algorithm: "conversion",
                family: Family::Hyperbolic,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "corollary22-gnp-r2",
            description: "Corollary 2.2 (greedy, r = 2) on connected G(n, p)",
            workload: Workload::Construction {
                algorithm: "corollary-2.2",
                family: Family::Gnp,
                faults: 2,
                samples: None,
            },
        },
        Scenario {
            name: "edge-fault-gnp",
            description: "edge-fault conversion (r = 1) on connected G(n, p)",
            workload: Workload::Construction {
                algorithm: "edge-fault",
                family: Family::Gnp,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "adaptive-gnp",
            description: "adaptive conversion (verification-battery stopping) on connected G(n, p)",
            workload: Workload::Construction {
                algorithm: "adaptive",
                family: Family::Gnp,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "clpr09-sampled-gnp",
            description: "CLPR09-style baseline over 20 sampled fault sets on connected G(n, p)",
            workload: Workload::Construction {
                algorithm: "clpr09",
                family: Family::Gnp,
                faults: 2,
                samples: Some(20),
            },
        },
        Scenario {
            name: "two-spanner-lp-gnp",
            description: "Theorem 3.3 knapsack-cover LP rounding on directed G(n, p)",
            workload: Workload::Construction {
                algorithm: "two-spanner-lp",
                family: Family::DirectedGnp,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "two-spanner-greedy-gnp",
            description: "LP-free greedy Lemma 3.1 cover on directed G(n, p)",
            workload: Workload::Construction {
                algorithm: "two-spanner-greedy",
                family: Family::DirectedGnp,
                faults: 1,
                samples: None,
            },
        },
        Scenario {
            name: "engine-queries",
            description: "Engine query throughput: batched distance/certificate queries under rotating faults",
            workload: Workload::EngineThroughput,
        },
        Scenario {
            name: "serve-repeated-faults",
            description: "planner throughput on a batch sharing a few fault scopes and sources",
            workload: Workload::ServeRepeatedFaults,
        },
        Scenario {
            name: "serve-zipf-sources",
            description: "planner throughput under a Zipf source distribution (hot sources, cold tail)",
            workload: Workload::ServeZipfSources,
        },
        Scenario {
            name: "serve-store-cold-load",
            description: "cold start: ArtifactStore loads binary .ftspan artifacts and serves a first batch",
            workload: Workload::ServeStoreColdLoad,
        },
        Scenario {
            name: "serve-net-throughput",
            description: "network serving: batched queries through the framed TCP protocol over loopback",
            workload: Workload::ServeNetThroughput,
        },
        Scenario {
            name: "shard-build",
            description: "sharded construction: partition, per-shard conversion builds, boundary overlay",
            workload: Workload::ShardBuild,
        },
        Scenario {
            name: "serve-sharded-batch",
            description: "scatter-gather serving: a repeated-scope batch through a sharded artifact",
            workload: Workload::ServeShardedBatch,
        },
        Scenario {
            name: "construct-large-gnm",
            description: "large-n construction: streaming G(n, m) spec through on_graph into an iteration-capped conversion",
            workload: Workload::LargeConstruction,
        },
        Scenario {
            name: "sssp-large",
            description: "large-n shortest paths: bucket-queue SSSP sweeps over a generated CSR",
            workload: Workload::LargeSssp,
        },
        Scenario {
            name: "delta-replay",
            description: "dynamic maintenance: a seeded delta stream applied through DynamicArtifact::apply",
            workload: Workload::DeltaReplay,
        },
        Scenario {
            name: "serve-under-churn",
            description: "network serving interleaved with ApplyDeltas warm swaps over loopback",
            workload: Workload::ServeUnderChurn,
        },
    ]
}

/// The exact scenario name set, in run order — what `bench_runner --list`
/// prints and the perf gate tracks (pinned by a unit test so the suite
/// cannot silently lose a scenario).
pub fn names() -> Vec<&'static str> {
    all().iter().map(|s| s.name).collect()
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

impl Scenario {
    /// The scenario's private seed for a base seed (independent of suite
    /// order).
    pub fn seed_for(&self, base: u64) -> u64 {
        base ^ fnv1a_str(self.name)
    }

    /// Runs the scenario and measures it: [`ScenarioConfig::repeats`]
    /// identical runs, reporting the fastest (the workload is seeded, so
    /// every repeat computes the same thing — and must digest identically).
    ///
    /// # Panics
    ///
    /// Panics if two repeats disagree on the digest (a determinism bug).
    pub fn run(&self, config: &ScenarioConfig) -> ScenarioResult {
        let mut best: Option<ScenarioResult> = None;
        for _ in 0..config.repeats.max(1) {
            let result = self.run_once(config);
            match &mut best {
                None => best = Some(result),
                Some(b) => {
                    assert_eq!(
                        b.digest, result.digest,
                        "scenario `{}`: repeats disagree on the digest",
                        self.name
                    );
                    if result.wall_ms < b.wall_ms {
                        *b = result;
                    }
                }
            }
        }
        best.expect("repeats >= 1")
    }

    fn run_once(&self, config: &ScenarioConfig) -> ScenarioResult {
        let mut result = match self.workload {
            Workload::Construction {
                algorithm,
                family,
                faults,
                samples,
            } => self.run_construction(config, algorithm, family, faults, samples),
            Workload::EngineThroughput => self.run_engine(config),
            Workload::ServeRepeatedFaults => self.run_serve_repeated(config),
            Workload::ServeZipfSources => self.run_serve_zipf(config),
            Workload::ServeStoreColdLoad => self.run_serve_store(config),
            Workload::ServeNetThroughput => self.run_serve_net(config),
            Workload::ShardBuild => self.run_shard_build(config),
            Workload::ServeShardedBatch => self.run_serve_sharded(config),
            Workload::LargeConstruction => self.run_construct_large(config),
            Workload::LargeSssp => self.run_sssp_large(config),
            Workload::DeltaReplay => self.run_delta_replay(config),
            Workload::ServeUnderChurn => self.run_serve_under_churn(config),
        };
        result.peak_rss_kb = peak_rss_kb();
        result
    }

    fn run_construction(
        &self,
        config: &ScenarioConfig,
        algorithm: &str,
        family: Family,
        faults: usize,
        samples: Option<usize>,
    ) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut builder = FtSpannerBuilder::new(algorithm).faults(faults).seed(seed);
        if let Some(s) = samples {
            builder = builder.samples(s);
        }
        if let Some(t) = config.threads {
            builder = builder.threads(t);
        }

        let mut gen_rng = ChaCha8Rng::seed_from_u64(seed);
        let (report, nodes, edges) = match family {
            Family::DirectedGnp => {
                let g = directed_input(config.profile, &mut gen_rng);
                let report = builder
                    .build_directed(&g)
                    .expect("scenario inputs satisfy the algorithm's requirements");
                (report, g.node_count(), g.arc_count())
            }
            _ => {
                let g = undirected_input(family, config.profile, &mut gen_rng);
                let report = builder
                    .build(&g)
                    .expect("scenario inputs satisfy the algorithm's requirements");
                (report, g.node_count(), g.edge_count())
            }
        };

        // Wall-clock of the construction proper, as measured inside the
        // algorithm (excludes input generation).
        let wall_ms = report.elapsed.as_secs_f64() * 1e3;
        let mut digest = Fnv::new();
        digest.write_bytes(report.algorithm.as_bytes());
        digest.write_u64(report.faults as u64);
        digest.write_f64(report.stretch);
        digest.write_f64(report.cost);
        match &report.edges {
            SpannerEdges::Undirected(edges) => {
                for id in edges.iter() {
                    digest.write_u64(id.index() as u64);
                }
            }
            SpannerEdges::Directed(arcs) => {
                for id in arcs.iter() {
                    digest.write_u64(id.index() as u64);
                }
            }
        }

        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: nodes,
            input_edges: edges,
            spanner_edges: report.size(),
            edges_per_sec: throughput(edges, wall_ms),
            queries_per_sec: None,
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    fn run_engine(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut gen_rng = ChaCha8Rng::seed_from_u64(seed);
        let n = match config.profile {
            Profile::Ci => 40,
            Profile::Full => 100,
        };
        let p = match config.profile {
            Profile::Ci => 0.12,
            Profile::Full => 0.06,
        };
        let g = generate::connected_gnp(n, p, generate::WeightKind::Unit, &mut gen_rng);
        let engine = backbone_engine(config, &g, "conversion", 1, seed);

        let mut queries = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let fault = NodeId::new((u + v) % n);
                let (a, b) = (NodeId::new(u), NodeId::new(v));
                if (u + v) % 2 == 0 {
                    queries.push(Query::distance("backbone", vec![fault], a, b));
                } else {
                    queries.push(Query::certificate("backbone", vec![fault], a, b));
                }
            }
        }

        let start = Instant::now();
        let results = engine.run_batch(&queries);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut digest = Fnv::new();
        digest_outcomes(&mut digest, &results);

        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges: g.edge_count(),
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(queries.len(), wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// The repeated-fault-set serving batch: queries share
    /// [`REPEATED_FAULT_SCOPES`] fault scopes and [`REPEATED_SOURCES`]
    /// sources, so grouped sessions plus the source cache answer almost
    /// everything from precomputed trees.
    fn run_serve_repeated(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let (engine, g, queries) = repeated_fault_workload(config, seed);
        let start = Instant::now();
        let results = engine.run_batch(&queries);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let mut digest = Fnv::new();
        digest_outcomes(&mut digest, &results);
        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: g.node_count(),
            input_edges: g.edge_count(),
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(queries.len(), wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    fn run_serve_zipf(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (n, batch) = match config.profile {
            Profile::Ci => (48, 4000),
            Profile::Full => (120, 24000),
        };
        let g = generate::connected_gnp(n, 24.0 / n as f64, generate::WeightKind::Unit, &mut rng);
        let engine = backbone_engine(config, &g, "conversion", 1, seed);

        // Zipf-like source popularity: source rank i has weight 1/(i + 1).
        let cumulative: Vec<f64> = (0..n)
            .scan(0.0f64, |acc, i| {
                *acc += 1.0 / (i as f64 + 1.0);
                Some(*acc)
            })
            .collect();
        let total = *cumulative.last().expect("n >= 1");
        let mut zipf_source = || {
            let x: f64 = rng.gen::<f64>() * total;
            NodeId::new(cumulative.partition_point(|&c| c < x).min(n - 1))
        };
        let scopes = [vec![NodeId::new(0)], vec![NodeId::new(n / 2)], vec![]];
        let mut queries = Vec::with_capacity(batch);
        for q in 0..batch {
            let u = zipf_source();
            let v = NodeId::new((q * 7 + 3) % n);
            let scope = scopes[q % scopes.len()].clone();
            queries.push(match q % 9 {
                0 => Query::certificate("backbone", scope, u, v),
                1 => Query::path("backbone", scope, u, v),
                _ => Query::distance("backbone", scope, u, v),
            });
        }

        let start = Instant::now();
        let results = engine.run_batch(&queries);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let mut digest = Fnv::new();
        digest_outcomes(&mut digest, &results);
        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges: g.edge_count(),
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(queries.len(), wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// The end-to-end network path: the same serving workload shape as the
    /// in-process scenarios, but streamed through an `ftspan-net` server on
    /// loopback. The timed section covers frame encode/decode, the TCP
    /// round trips, admission control and the worker pool — everything a
    /// real client pays. One connection issues sequential batch requests,
    /// so results arrive in input order and the digest is comparable across
    /// runs, worker counts and queue capacities.
    fn run_serve_net(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (n, batch, per_request) = match config.profile {
            Profile::Ci => (40, 3000, 50),
            Profile::Full => (96, 20000, 100),
        };
        let g = generate::connected_gnp(n, 24.0 / n as f64, generate::WeightKind::Unit, &mut rng);
        let engine = backbone_engine(config, &g, "conversion", 1, seed);

        let scopes = [vec![NodeId::new(1)], vec![NodeId::new(n / 3)], vec![]];
        let sources: Vec<NodeId> = (0..8).map(|s| NodeId::new((s * 5 + 2) % n)).collect();
        let mut queries = Vec::with_capacity(batch);
        for q in 0..batch {
            let u = sources[q % sources.len()];
            let v = NodeId::new((q * 13 + 4) % n);
            let scope = scopes[q % scopes.len()].clone();
            queries.push(match q % 8 {
                0 => Query::certificate("backbone", scope, u, v),
                1 => Query::path("backbone", scope, u, v),
                _ => Query::distance("backbone", scope, u, v),
            });
        }

        // Setup (untimed): bind the server and connect the client.
        let server_config = ftspan_net::ServerConfig {
            workers: config.threads.unwrap_or_else(par::available_threads),
            ..ftspan_net::ServerConfig::default()
        };
        let server = ftspan_net::Server::bind(engine, "127.0.0.1:0", server_config)
            .expect("loopback bind succeeds")
            .spawn()
            .expect("server threads start");
        let mut client =
            ftspan_net::Client::connect(server.addr()).expect("loopback connect succeeds");

        // Timed: stream the whole workload through the wire.
        let start = Instant::now();
        let mut results = Vec::with_capacity(batch);
        for chunk in queries.chunks(per_request) {
            let reply = client
                .run_batch(chunk)
                .expect("loopback request succeeds")
                .expect_results()
                .expect("a sequential client is never rejected");
            results.extend(reply);
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        drop(client);
        server.shutdown().expect("server drains cleanly");

        let mut digest = Fnv::new();
        digest_outcomes(&mut digest, &results);
        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges: g.edge_count(),
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(queries.len(), wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// The dynamic-artifact maintenance loop in isolation: a seeded churn
    /// stream applied round by round through [`DynamicArtifact::apply`],
    /// each round generated against the *current* post-delta graph. The
    /// timed section covers delta generation, patch-vs-rebuild decisions
    /// and the repairs themselves. The digest pins the final version,
    /// applied sequence and a query battery over the final artifact — so
    /// any drift in the repair path (at any worker count) fails the
    /// determinism suite before it could reach serving.
    fn run_delta_replay(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (n, rounds, churn) = match config.profile {
            Profile::Ci => (40, 6, 6),
            Profile::Full => (96, 12, 12),
        };
        let g = generate::connected_gnp(n, 24.0 / n as f64, generate::WeightKind::Unit, &mut rng);
        let input_edges = g.edge_count();
        let mut current = DynamicArtifact::build(&g, dynamic_recipe(config, seed))
            .expect("scenario inputs build");

        let policy = RebuildPolicy::default();
        let mut applied_total = 0usize;
        let start = Instant::now();
        for _ in 0..rounds {
            let deltas = churn_batch(current.artifact().source_graph(), &mut rng, churn);
            let (next, report) = current
                .apply(&deltas, &policy)
                .expect("churn batches are valid against the current graph");
            applied_total += report.applied;
            current = next;
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut digest = Fnv::new();
        digest.write_u64(current.version());
        digest.write_u64(current.applied_seq());
        let spanner_edges = current.artifact().spanner_edge_count();
        let mut engine = engine_with_workers(config);
        engine.register_dynamic("backbone", current);
        let mut queries = Vec::with_capacity(200);
        for q in 0..200usize {
            let u = NodeId::new((q * 7 + 1) % n);
            let v = NodeId::new((q * 11 + 3) % n);
            let scope = if q % 3 == 0 {
                vec![NodeId::new((q * 5 + 2) % n)]
            } else {
                vec![]
            };
            queries.push(match q % 5 {
                0 => Query::certificate("backbone", scope, u, v),
                1 => Query::path("backbone", scope, u, v),
                _ => Query::distance("backbone", scope, u, v),
            });
        }
        digest_outcomes(&mut digest, &engine.run_batch(&queries));
        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges,
            spanner_edges,
            edges_per_sec: throughput(applied_total, wall_ms),
            queries_per_sec: None,
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// Serving under churn: the loopback network path of `serve-net`, but
    /// interleaved with `ApplyDeltas` warm swaps. One sequential client
    /// alternates a query batch with a churn batch each round, so the
    /// version every query observes is a pure function of the seed and the
    /// digest is comparable across runs and worker counts. Churn batches
    /// are generated from the engine's *shared* registry snapshot — the
    /// same post-delta graph the server just swapped in.
    fn run_serve_under_churn(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (n, rounds, per_round, churn) = match config.profile {
            Profile::Ci => (40, 8, 250, 4),
            Profile::Full => (96, 12, 1500, 8),
        };
        let g = generate::connected_gnp(n, 24.0 / n as f64, generate::WeightKind::Unit, &mut rng);
        let artifact = DynamicArtifact::build(&g, dynamic_recipe(config, seed))
            .expect("scenario inputs build");
        let mut engine = engine_with_workers(config);
        engine.register_dynamic("backbone", artifact);

        // Setup (untimed): bind the server on a clone sharing the registry,
        // keep our copy for snapshotting the current graph between rounds.
        let server_config = ftspan_net::ServerConfig {
            workers: config.threads.unwrap_or_else(par::available_threads),
            ..ftspan_net::ServerConfig::default()
        };
        let server = ftspan_net::Server::bind(engine.clone(), "127.0.0.1:0", server_config)
            .expect("loopback bind succeeds")
            .spawn()
            .expect("server threads start");
        let mut client =
            ftspan_net::Client::connect(server.addr()).expect("loopback connect succeeds");

        let mut digest = Fnv::new();
        let start = Instant::now();
        for round in 0..rounds {
            let mut queries = Vec::with_capacity(per_round);
            for q in 0..per_round {
                let u = NodeId::new((q * 7 + round + 1) % n);
                let v = NodeId::new((q * 13 + 4) % n);
                let scope = if q % 4 == 0 {
                    vec![NodeId::new((q * 3 + round) % n)]
                } else {
                    vec![]
                };
                queries.push(match q % 6 {
                    0 => Query::certificate("backbone", scope, u, v),
                    1 => Query::path("backbone", scope, u, v),
                    _ => Query::distance("backbone", scope, u, v),
                });
            }
            let results = client
                .run_batch(&queries)
                .expect("loopback request succeeds")
                .expect_results()
                .expect("a sequential client is never rejected");
            digest_outcomes(&mut digest, &results);

            let deltas = {
                let snapshot = engine.artifact("backbone").expect("backbone is registered");
                churn_batch(snapshot.source_graph(), &mut rng, churn)
            };
            let info = client
                .apply_deltas("backbone", &deltas)
                .expect("loopback request succeeds")
                .expect("churn batches are valid against the current graph");
            digest.write_u64(info.version);
            digest.write_u64(info.applied);
            digest.write_u64(info.last_seq);
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        drop(client);
        server.shutdown().expect("server drains cleanly");

        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges: g.edge_count(),
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(rounds * per_round, wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    fn run_serve_store(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (n, batch) = match config.profile {
            Profile::Ci => (32, 600),
            Profile::Full => (72, 2400),
        };
        // Setup (untimed): build three artifacts and persist them as binary
        // `.ftspan` files.
        let dir = std::env::temp_dir().join(format!(
            "ftspan-bench-store-{seed:x}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = ArtifactStore::open(&dir).expect("temp store is creatable");
        let g = generate::connected_gnp(n, 0.15, generate::WeightKind::Unit, &mut rng);
        for (name, algorithm, edge_model) in [
            ("conv", "conversion", false),
            ("cor22", "corollary-2.2", false),
            ("edge", "edge-fault", true),
        ] {
            let mut builder = configured_builder(config, algorithm, 1, seed);
            if edge_model {
                builder = builder.edge_faults();
            }
            let artifact = builder.build_artifact(&g).expect("scenario inputs build");
            store.save(name, &artifact).expect("temp store is writable");
        }
        let edge_pair = {
            let (_, e) = g.edges().next().expect("connected graph has edges");
            (e.u, e.v)
        };
        let mut queries = Vec::with_capacity(batch);
        for q in 0..batch {
            let u = NodeId::new(q % n);
            let v = NodeId::new((q * 3 + 1) % n);
            queries.push(match q % 3 {
                0 => Query::distance("conv", vec![NodeId::new((q / 3) % n)], u, v),
                1 => Query::certificate("cor22", vec![NodeId::new((q / 3) % n)], u, v),
                _ => Query::distance("edge", vec![], u, v).with_edge_faults(vec![edge_pair]),
            });
        }

        // Timed: cold start — open the store, load every artifact, serve the
        // first batch.
        let start = Instant::now();
        let store = ArtifactStore::open(&dir).expect("temp store exists");
        let mut engine = engine_with_workers(config);
        let loaded = store.load_into(&mut engine).expect("artifacts load back");
        let results = engine.run_batch(&queries);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        std::fs::remove_dir_all(&dir).ok();
        let mut digest = Fnv::new();
        for name in &loaded {
            digest.write_bytes(name.as_bytes());
        }
        digest_outcomes(&mut digest, &results);
        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges: g.edge_count(),
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(queries.len(), wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// Times the whole sharded construction pipeline on connected G(n, p):
    /// seeded partition, per-shard conversion builds, overlay assembly.
    fn run_shard_build(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (n, p, parts) = match config.profile {
            Profile::Ci => (64, 0.12, 4),
            Profile::Full => (160, 0.06, 6),
        };
        let g = generate::connected_gnp(n, p, generate::WeightKind::Unit, &mut rng);
        let builder = configured_builder(config, "conversion", 1, seed);
        let partition_config = partition::PartitionConfig::new(parts).with_seed(seed);

        let start = Instant::now();
        let sharded =
            ShardedArtifact::build(&g, &builder, &partition_config).expect("scenario inputs shard");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut digest = Fnv::new();
        for &part in sharded.assignment() {
            digest.write_u64(part as u64);
        }
        for cut in sharded.cut_edges() {
            digest.write_u64(cut.u.index() as u64);
            digest.write_u64(cut.v.index() as u64);
            digest.write_f64(cut.weight);
        }
        for shard in sharded.shards() {
            for id in shard.spanner_edges().iter() {
                digest.write_u64(id.index() as u64);
            }
        }

        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges: g.edge_count(),
            spanner_edges: sharded.spanner_edge_count(),
            edges_per_sec: throughput(g.edge_count(), wall_ms),
            queries_per_sec: None,
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// Serves a repeated-scope batch through a sharded registration — the
    /// scatter-gather counterpart of `serve-repeated-faults`, grouped by the
    /// same planner.
    fn run_serve_sharded(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (n, parts, batch) = match config.profile {
            Profile::Ci => (48, 3, 2000),
            Profile::Full => (120, 5, 12000),
        };
        let g = generate::connected_gnp(n, 24.0 / n as f64, generate::WeightKind::Unit, &mut rng);
        let builder = configured_builder(config, "conversion", 2, seed);
        let partition_config = partition::PartitionConfig::new(parts).with_seed(seed);
        let sharded =
            ShardedArtifact::build(&g, &builder, &partition_config).expect("scenario inputs shard");
        let mut engine = engine_with_workers(config);
        engine.register_sharded("backbone", sharded);

        let scopes: Vec<Vec<NodeId>> = (0..REPEATED_FAULT_SCOPES)
            .map(|s| vec![NodeId::new(s * 2 % n), NodeId::new((s * 5 + 1) % n)])
            .collect();
        let sources: Vec<NodeId> = (0..REPEATED_SOURCES)
            .map(|s| NodeId::new((s * 4 + 2) % n))
            .collect();
        let mut queries = Vec::with_capacity(batch);
        for q in 0..batch {
            let u = sources[q % sources.len()];
            let v = NodeId::new((q * 11 + 5) % n);
            let scope = scopes[q % scopes.len()].clone();
            queries.push(match q % 7 {
                0 => Query::certificate("backbone", scope, u, v),
                1 => Query::path("backbone", scope, u, v),
                _ => Query::distance("backbone", scope, u, v),
            });
        }

        let start = Instant::now();
        let results = engine.run_batch(&queries);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let mut digest = Fnv::new();
        digest_outcomes(&mut digest, &results);
        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: n,
            input_edges: g.edge_count(),
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(queries.len(), wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// Large-n construction end to end through the redesigned input path:
    /// a seeded G(n, m) spec streams through [`FtSpannerBuilder::on_graph`]
    /// (CSR packed once at the boundary, adopted by the artifact), with the
    /// conversion capped at two Baswana–Sen iterations so the scenario
    /// measures pipeline scale rather than the full Θ(r³ log n) union.
    fn run_construct_large(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let (nodes, edges) = match config.profile {
            Profile::Ci => (100_000, 300_000),
            Profile::Full => (1_000_000, 4_000_000),
        };
        let spec = GeneratorSpec::Gnm {
            nodes,
            edges,
            weights: generate::WeightKind::Unit,
            seed,
        };
        let mut builder = FtSpannerBuilder::new("conversion")
            .faults(1)
            .black_box(BlackBoxKind::BaswanaSen)
            .iterations(2)
            .seed(seed);
        if let Some(t) = config.threads {
            builder = builder.threads(t);
        }

        // The measured section covers generation, boundary CSR packing and
        // the construction — the whole pipeline the streaming path exists
        // to keep memory-bounded.
        let start = Instant::now();
        let artifact = builder
            .artifact_on_graph(spec)
            .expect("G(n, m) specs satisfy the conversion's requirements");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut digest = Fnv::new();
        digest.write_u64(artifact.node_count() as u64);
        digest.write_u64(artifact.source_edge_count() as u64);
        for id in artifact.spanner_edges().iter() {
            digest.write_u64(id.index() as u64);
        }
        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: nodes,
            input_edges: edges,
            spanner_edges: artifact.spanner_edge_count(),
            edges_per_sec: throughput(edges, wall_ms),
            queries_per_sec: None,
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }

    /// Large-n shortest paths: a generated CSR served directly (no Graph
    /// detour), swept from a rotating set of sources through one reused
    /// [`SsspWorkspace`]. At these sizes the automatic strategy picks the
    /// bucket queue; the digest folds every distance of every sweep, so the
    /// result also pins the bucket/heap distance equivalence at scale.
    ///
    /// [`SsspWorkspace`]: ftspan_graph::csr::SsspWorkspace
    fn run_sssp_large(&self, config: &ScenarioConfig) -> ScenarioResult {
        let seed = self.seed_for(config.seed);
        let (nodes, edges, sources) = match config.profile {
            Profile::Ci => (100_000, 400_000, 8),
            Profile::Full => (1_000_000, 4_000_000, 8),
        };
        let spec = GeneratorSpec::Gnm {
            nodes,
            edges,
            weights: generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
            seed,
        };
        let csr = spec.generate_csr().expect("G(n, m) specs generate");
        let mut workspace = ftspan_graph::csr::SsspWorkspace::new();

        let start = Instant::now();
        let mut digest = Fnv::new();
        for s in 0..sources {
            let source = NodeId::new(s * (nodes / sources) % nodes);
            csr.sssp_into(source, None, None, None, &mut workspace)
                .expect("in-bounds sources sweep");
            for &d in workspace.distances() {
                digest.write_f64(d);
            }
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        ScenarioResult {
            name: self.name.to_string(),
            wall_ms,
            input_nodes: nodes,
            input_edges: edges,
            spanner_edges: 0,
            edges_per_sec: None,
            queries_per_sec: throughput(sources, wall_ms),
            peak_rss_kb: None,
            digest: format!("{:016x}", digest.finish()),
        }
    }
}

/// The shared serving-scenario setup: a builder for `algorithm` with
/// `config.threads` threaded through.
/// A seeded, always-valid delta batch against `g`: deletes and reweights
/// draw from the current edge list, inserts draw fresh absent pairs, and no
/// pair is touched twice within one batch — so the batch always applies
/// cleanly and the stream is a pure function of the seed.
fn churn_batch(g: &Graph, rng: &mut ChaCha8Rng, size: usize) -> Vec<EdgeDelta> {
    let pairs: Vec<(NodeId, NodeId, f64)> = g.edges().map(|(_, e)| (e.u, e.v, e.weight)).collect();
    let n = g.node_count();
    let mut touched = std::collections::BTreeSet::new();
    let mut deltas = Vec::with_capacity(size);
    for _ in 0..size {
        match rng.gen_range(0..4u32) {
            0 if !pairs.is_empty() => {
                // Bounded retries: an occupied draw is skipped, keeping the
                // loop total even when the batch covers most of the graph.
                for _ in 0..8 {
                    let (u, v, _) = pairs[rng.gen_range(0..pairs.len())];
                    if touched.insert((u.index(), v.index())) {
                        deltas.push(EdgeDelta::Delete { u, v });
                        break;
                    }
                }
            }
            1 if !pairs.is_empty() => {
                for _ in 0..8 {
                    let (u, v, weight) = pairs[rng.gen_range(0..pairs.len())];
                    if touched.insert((u.index(), v.index())) {
                        deltas.push(EdgeDelta::Reweight {
                            u,
                            v,
                            weight: weight + 0.25,
                        });
                        break;
                    }
                }
            }
            _ => {
                for _ in 0..32 {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if a == b {
                        continue;
                    }
                    let (u, v) = (NodeId::new(a.min(b)), NodeId::new(a.max(b)));
                    if g.find_edge(u, v).is_some() || !touched.insert((u.index(), v.index())) {
                        continue;
                    }
                    deltas.push(EdgeDelta::Insert {
                        u,
                        v,
                        weight: 1.0 + rng.gen::<f64>(),
                    });
                    break;
                }
            }
        }
    }
    deltas
}

/// The recipe both dynamic scenarios build from: a repairable construction
/// with a fixed iteration budget, threaded per the config (digests are
/// thread-count invariant).
fn dynamic_recipe(config: &ScenarioConfig, seed: u64) -> BuildRecipe {
    let request = SpannerRequest {
        faults: 1,
        stretch: 3.0,
        iterations: Some(8),
        threads: config.threads,
        ..SpannerRequest::default()
    };
    BuildRecipe::new("corollary-2.2", request, seed)
}

fn configured_builder(
    config: &ScenarioConfig,
    algorithm: &str,
    faults: usize,
    seed: u64,
) -> FtSpannerBuilder {
    let mut builder = FtSpannerBuilder::new(algorithm).faults(faults).seed(seed);
    if let Some(t) = config.threads {
        builder = builder.threads(t);
    }
    builder
}

/// An empty engine with `config.threads` workers (engine defaults otherwise).
fn engine_with_workers(config: &ScenarioConfig) -> Engine {
    let mut engine = Engine::new();
    if let Some(t) = config.threads {
        engine = engine.with_workers(t);
    }
    engine
}

/// Builds `algorithm` on `g` and registers it as `"backbone"` — the whole
/// setup of the single-artifact serving scenarios.
fn backbone_engine(
    config: &ScenarioConfig,
    g: &Graph,
    algorithm: &str,
    faults: usize,
    seed: u64,
) -> Engine {
    let artifact = configured_builder(config, algorithm, faults, seed)
        .build_artifact(g)
        .expect("scenario inputs build");
    let mut engine = engine_with_workers(config);
    engine.register("backbone", artifact);
    engine
}

/// Number of distinct fault scopes in the repeated-fault serving scenario.
const REPEATED_FAULT_SCOPES: usize = 4;
/// Number of distinct query sources in the repeated-fault serving scenario.
const REPEATED_SOURCES: usize = 12;

/// Builds the repeated-fault-set serving workload: the engine (planner
/// configured from `config`), the input graph and the query batch. Shared
/// with the speedup acceptance test in `tests/`.
pub fn repeated_fault_workload(config: &ScenarioConfig, seed: u64) -> (Engine, Graph, Vec<Query>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (n, batch) = match config.profile {
        Profile::Ci => (48, 4000),
        Profile::Full => (120, 24000),
    };
    let g = generate::connected_gnp(n, 24.0 / n as f64, generate::WeightKind::Unit, &mut rng);
    let engine = backbone_engine(config, &g, "conversion", 2, seed);

    let scopes: Vec<Vec<NodeId>> = (0..REPEATED_FAULT_SCOPES)
        .map(|s| vec![NodeId::new(s * 2 % n), NodeId::new((s * 5 + 1) % n)])
        .collect();
    let sources: Vec<NodeId> = (0..REPEATED_SOURCES)
        .map(|s| NodeId::new((s * 4 + 2) % n))
        .collect();
    let mut queries = Vec::with_capacity(batch);
    for q in 0..batch {
        let u = sources[q % sources.len()];
        let v = NodeId::new((q * 11 + 5) % n);
        let scope = scopes[q % scopes.len()].clone();
        queries.push(match q % 7 {
            0 => Query::certificate("backbone", scope, u, v),
            1 => Query::path("backbone", scope, u, v),
            _ => Query::distance("backbone", scope, u, v),
        });
    }
    (engine, g, queries)
}

/// Folds a batch's outcomes into a digest (semantic output only: distances,
/// paths, certificate numbers, error strings).
fn digest_outcomes(
    digest: &mut Fnv,
    results: &[fault_tolerant_spanners::core::Result<QueryOutcome>],
) {
    for outcome in results {
        match outcome {
            Ok(QueryOutcome::Distance(d)) => {
                digest.write_bytes(b"d");
                digest.write_f64(*d);
            }
            Ok(QueryOutcome::Path(p)) => {
                digest.write_bytes(b"p");
                if let Some(path) = p {
                    for v in path {
                        digest.write_u64(v.index() as u64);
                    }
                }
            }
            Ok(QueryOutcome::Certificate(c)) => {
                digest.write_bytes(b"c");
                digest.write_f64(c.spanner_distance);
                digest.write_f64(c.baseline_distance);
            }
            Err(e) => {
                digest.write_bytes(b"e");
                digest.write_bytes(e.to_string().as_bytes());
            }
        }
    }
}

fn throughput(items: usize, wall_ms: f64) -> Option<f64> {
    if wall_ms <= 0.0 {
        None
    } else {
        Some(items as f64 / (wall_ms / 1e3))
    }
}

fn undirected_input(family: Family, profile: Profile, rng: &mut ChaCha8Rng) -> Graph {
    match (family, profile) {
        (Family::Gnp, Profile::Ci) => {
            generate::connected_gnp(48, 0.15, generate::WeightKind::Unit, rng)
        }
        (Family::Gnp, Profile::Full) => {
            generate::connected_gnp(120, 0.08, generate::WeightKind::Unit, rng)
        }
        (Family::Grid, Profile::Ci) => generate::grid(8, 8),
        (Family::Grid, Profile::Full) => generate::grid(16, 16),
        (Family::NearRegular, Profile::Ci) => generate::random_near_regular(48, 6, rng),
        (Family::NearRegular, Profile::Full) => generate::random_near_regular(120, 6, rng),
        (Family::PlanarMesh, Profile::Ci) => planar_mesh_input(8, 9, rng),
        (Family::PlanarMesh, Profile::Full) => planar_mesh_input(16, 16, rng),
        (Family::Hyperbolic, Profile::Ci) => hyperbolic_input(64, rng),
        (Family::Hyperbolic, Profile::Full) => hyperbolic_input(160, rng),
        (Family::DirectedGnp, _) => unreachable!("directed families use directed_input"),
    }
}

/// A seeded road-network-like mesh through the [`GeneratorSpec`] path (the
/// same generator the adversarial battery sweeps).
fn planar_mesh_input(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Graph {
    GeneratorSpec::PlanarMesh {
        rows,
        cols,
        diagonal_p: 0.4,
        jitter: 0.25,
        seed: rng.gen(),
    }
    .generate()
    .expect("mesh parameters are valid")
}

/// A seeded *connected* hyperbolic instance: connectivity is seed-dependent
/// at these sizes, so the first connected seed in a fixed window derived
/// from the scenario stream is used — deterministic for a fixed base seed.
fn hyperbolic_input(nodes: usize, rng: &mut ChaCha8Rng) -> Graph {
    let radius = 2.0 * (nodes as f64).ln() * 0.55;
    let base: u64 = rng.gen();
    for offset in 0..64 {
        let g = GeneratorSpec::Hyperbolic {
            nodes,
            alpha: 0.75,
            radius,
            seed: base.wrapping_add(offset),
        }
        .generate()
        .expect("hyperbolic parameters are valid");
        if g.is_connected() {
            return g;
        }
    }
    panic!("no connected hyperbolic instance with {nodes} nodes in 64 seeds; retune alpha/radius")
}

fn directed_input(profile: Profile, rng: &mut ChaCha8Rng) -> DiGraph {
    match profile {
        Profile::Ci => generate::directed_gnp(12, 0.35, generate::WeightKind::Unit, rng),
        Profile::Full => generate::directed_gnp(18, 0.3, generate::WeightKind::Unit, rng),
    }
}

/// Runs every scenario of the suite under `config`, in suite order.
pub fn run_all(config: &ScenarioConfig) -> Vec<ScenarioResult> {
    all().iter().map(|s| s.run(config)).collect()
}

/// A full `BENCH.json` document: the configuration plus one result per
/// scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Profile the suite ran at.
    pub profile: String,
    /// Base seed of the run.
    pub seed: u64,
    /// The per-scenario results, in run order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    /// Assembles a report from a run.
    pub fn new(config: &ScenarioConfig, scenarios: Vec<ScenarioResult>) -> Self {
        BenchReport {
            profile: config.profile.name().to_string(),
            seed: config.seed,
            scenarios,
        }
    }

    /// Serializes the report as pretty-printed JSON (one key per line — the
    /// same shape [`BenchReport::parse_json`] reads back).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"ftspan-bench/1\",\n");
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
            out.push_str(&format!("      \"wall_ms\": {:.3},\n", s.wall_ms));
            out.push_str(&format!("      \"input_nodes\": {},\n", s.input_nodes));
            out.push_str(&format!("      \"input_edges\": {},\n", s.input_edges));
            out.push_str(&format!("      \"spanner_edges\": {},\n", s.spanner_edges));
            out.push_str(&format!(
                "      \"edges_per_sec\": {},\n",
                json_number(s.edges_per_sec)
            ));
            out.push_str(&format!(
                "      \"queries_per_sec\": {},\n",
                json_number(s.queries_per_sec)
            ));
            out.push_str(&format!(
                "      \"peak_rss_kb\": {},\n",
                match s.peak_rss_kb {
                    Some(v) => v.to_string(),
                    None => "null".to_string(),
                }
            ));
            out.push_str(&format!("      \"digest\": \"{}\"\n", s.digest));
            out.push_str(if i + 1 == self.scenarios.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Reads a report back from the JSON shape [`BenchReport::to_json`]
    /// writes (a deliberately minimal reader: one `"key": value` pair per
    /// line, scenarios delimited by `{` / `}` lines).
    ///
    /// Returns `None` when the document does not carry the expected schema
    /// marker.
    pub fn parse_json(text: &str) -> Option<Self> {
        if !text.contains("\"schema\": \"ftspan-bench/1\"") {
            return None;
        }
        let mut profile = String::new();
        let mut seed = 0u64;
        let mut scenarios = Vec::new();
        let mut current: Option<ScenarioResult> = None;
        let mut in_scenarios = false;
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if !in_scenarios {
                if line.starts_with("\"scenarios\"") {
                    in_scenarios = true;
                } else if let Some((key, value)) = split_json_pair(line) {
                    match key {
                        "profile" => profile = value.trim_matches('"').to_string(),
                        "seed" => seed = value.parse().unwrap_or(0),
                        _ => {}
                    }
                }
                continue;
            }
            if line == "{" {
                current = Some(ScenarioResult {
                    name: String::new(),
                    wall_ms: 0.0,
                    input_nodes: 0,
                    input_edges: 0,
                    spanner_edges: 0,
                    edges_per_sec: None,
                    queries_per_sec: None,
                    peak_rss_kb: None,
                    digest: String::new(),
                });
                continue;
            }
            if line == "}" {
                if let Some(s) = current.take() {
                    if !s.name.is_empty() {
                        scenarios.push(s);
                    }
                }
                continue;
            }
            let Some((key, value)) = split_json_pair(line) else {
                continue;
            };
            match (&mut current, key) {
                (Some(s), "name") => s.name = value.trim_matches('"').to_string(),
                (Some(s), "wall_ms") => s.wall_ms = value.parse().unwrap_or(0.0),
                (Some(s), "input_nodes") => s.input_nodes = value.parse().unwrap_or(0),
                (Some(s), "input_edges") => s.input_edges = value.parse().unwrap_or(0),
                (Some(s), "spanner_edges") => s.spanner_edges = value.parse().unwrap_or(0),
                (Some(s), "edges_per_sec") => s.edges_per_sec = value.parse().ok(),
                (Some(s), "queries_per_sec") => s.queries_per_sec = value.parse().ok(),
                (Some(s), "peak_rss_kb") => s.peak_rss_kb = value.parse().ok(),
                (Some(s), "digest") => s.digest = value.trim_matches('"').to_string(),
                _ => {}
            }
        }
        Some(BenchReport {
            profile,
            seed,
            scenarios,
        })
    }

    /// The result for a named scenario, if present.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

fn json_number(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    }
}

fn split_json_pair(line: &str) -> Option<(&str, &str)> {
    let rest = line.strip_prefix('"')?;
    let (key, rest) = rest.split_once('"')?;
    let value = rest.strip_prefix(':')?.trim();
    Some((key, value))
}

/// One regression found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The scenario that regressed (or disappeared).
    pub scenario: String,
    /// Human-readable explanation with the numbers.
    pub message: String,
}

/// Absolute grace added to every scenario's budget, in milliseconds: below
/// this scale, scheduler jitter dominates and a pure percentage gate would
/// flake on sub-millisecond scenarios.
pub const ABSOLUTE_GRACE_MS: f64 = 1.0;

/// The perf gate: compares a current run against a baseline report.
///
/// A scenario **fails** when its wall-clock exceeds
/// `baseline * (1 + tolerance) + ABSOLUTE_GRACE_MS` (tolerance 0.25 = 25%),
/// or when it exists in the baseline but not in the current run. Scenarios
/// new in the current run pass (they have no baseline yet — re-baseline to
/// start tracking them).
pub fn compare(
    baseline: &BenchReport,
    current: &[ScenarioResult],
    tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in &baseline.scenarios {
        let Some(now) = current.iter().find(|s| s.name == base.name) else {
            regressions.push(Regression {
                scenario: base.name.clone(),
                message: format!(
                    "scenario `{}` is in the baseline but was not run",
                    base.name
                ),
            });
            continue;
        };
        let budget = base.wall_ms * (1.0 + tolerance) + ABSOLUTE_GRACE_MS;
        if now.wall_ms > budget {
            regressions.push(Regression {
                scenario: base.name.clone(),
                message: format!(
                    "scenario `{}` regressed: {:.2} ms vs baseline {:.2} ms (budget {:.2} ms at +{:.0}%)",
                    base.name,
                    now.wall_ms,
                    base.wall_ms,
                    budget,
                    tolerance * 100.0
                ),
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, wall_ms: f64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            wall_ms,
            input_nodes: 10,
            input_edges: 20,
            spanner_edges: 5,
            edges_per_sec: Some(123.456),
            queries_per_sec: None,
            peak_rss_kb: Some(4096),
            digest: "00ff00ff00ff00ff".to_string(),
        }
    }

    #[test]
    fn suite_has_at_least_eight_named_scenarios() {
        let scenarios = all();
        assert!(scenarios.len() >= 8, "only {} scenarios", scenarios.len());
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.workload, Workload::EngineThroughput)));
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("conversion-gnp").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn scenario_set_is_pinned() {
        // The exact set `bench_runner --list` prints and the CI perf gate
        // tracks. A scenario can only be added or removed by updating this
        // test (and re-baselining) — the gate cannot silently lose one.
        assert_eq!(
            names(),
            vec![
                "conversion-gnp",
                "conversion-grid",
                "conversion-regular",
                "construct-planar-mesh",
                "construct-hyperbolic",
                "corollary22-gnp-r2",
                "edge-fault-gnp",
                "adaptive-gnp",
                "clpr09-sampled-gnp",
                "two-spanner-lp-gnp",
                "two-spanner-greedy-gnp",
                "engine-queries",
                "serve-repeated-faults",
                "serve-zipf-sources",
                "serve-store-cold-load",
                "serve-net-throughput",
                "shard-build",
                "serve-sharded-batch",
                "construct-large-gnm",
                "sssp-large",
                "delta-replay",
                "serve-under-churn",
            ]
        );
    }

    #[test]
    fn network_serving_scenario_runs_and_digests_deterministically() {
        let config = ScenarioConfig {
            profile: Profile::Ci,
            seed: 6,
            threads: Some(2),
            repeats: 1,
        };
        let scenario = find("serve-net-throughput").unwrap();
        let a = scenario.run(&config);
        let b = scenario.run(&config);
        assert_eq!(a.digest, b.digest);
        assert!(a.queries_per_sec.is_some());
        // The digest must also be worker-count invariant: the wire path may
        // not reorder or alter results.
        let four = ScenarioConfig {
            threads: Some(4),
            ..config
        };
        assert_eq!(scenario.run(&four).digest, a.digest);
    }

    #[test]
    fn a_serving_scenario_runs_and_digests_deterministically() {
        let config = ScenarioConfig {
            profile: Profile::Ci,
            seed: 5,
            threads: Some(2),
            repeats: 1,
        };
        let scenario = find("serve-repeated-faults").unwrap();
        let a = scenario.run(&config);
        let b = scenario.run(&config);
        assert_eq!(a.digest, b.digest);
        assert!(a.queries_per_sec.is_some());
        assert_eq!(a.spanner_edges, 0);
    }

    #[test]
    fn scenario_seeds_differ_by_name() {
        let a = find("conversion-gnp").unwrap().seed_for(1);
        let b = find("conversion-grid").unwrap().seed_for(1);
        assert_ne!(a, b);
    }

    #[test]
    fn json_round_trips() {
        let config = ScenarioConfig::new(Profile::Ci);
        let report = BenchReport::new(&config, vec![result("a", 12.5), result("b", 3.25)]);
        let parsed = BenchReport::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.profile, "ci");
        assert_eq!(parsed.seed, 2011);
        assert_eq!(parsed.scenarios.len(), 2);
        assert_eq!(parsed.scenario("a").unwrap().wall_ms, 12.5);
        assert_eq!(parsed.scenario("b").unwrap().digest, "00ff00ff00ff00ff");
        assert_eq!(parsed.scenario("a").unwrap().edges_per_sec, Some(123.456));
        assert_eq!(parsed.scenario("a").unwrap().queries_per_sec, None);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(BenchReport::parse_json("{\"something\": 1}").is_none());
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let config = ScenarioConfig::new(Profile::Ci);
        let baseline = BenchReport::new(
            &config,
            vec![
                result("stable", 10.0),
                result("slow", 10.0),
                result("gone", 1.0),
            ],
        );
        let current = vec![
            result("stable", 13.4),    // within 25% + 1 ms grace of 10 ms
            result("slow", 14.0),      // beyond the 13.5 ms budget — regression
            result("brand-new", 99.0), // no baseline — passes
        ];
        let regressions = compare(&baseline, &current, 0.25);
        let names: Vec<&str> = regressions.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, vec!["slow", "gone"]);
        assert!(regressions[0].message.contains("regressed"));
    }

    #[test]
    fn a_cheap_scenario_runs_and_digests_deterministically() {
        let config = ScenarioConfig {
            profile: Profile::Ci,
            seed: 7,
            threads: Some(2),
            repeats: 2,
        };
        let scenario = find("two-spanner-greedy-gnp").unwrap();
        let a = scenario.run(&config);
        let b = scenario.run(&config);
        assert_eq!(a.digest, b.digest);
        assert!(a.spanner_edges > 0);
        assert!(a.edges_per_sec.is_some());
    }
}
