//! Experiment E10 — the LP rounding of Theorem 3.3 against the LP-free
//! greedy cover heuristic and the degree lower bound.
//!
//! The paper's algorithm pays an `O(log n)` factor over the LP; the greedy
//! heuristic has no guarantee but is simple and fast. This binary puts both
//! next to the LP (4) lower bound and the combinatorial degree lower bound on
//! the same directed instances, for growing `r`.

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run(costs: generate::WeightKind, label: &str, rng: &mut ChaCha8Rng) {
    let n = 16;
    let graph = generate::directed_gnp(n, 0.4, costs, rng);
    println!(
        "E10 ({label}): n = {}, arcs = {}, total cost {:.1}\n",
        graph.node_count(),
        graph.arc_count(),
        graph.total_cost()
    );

    let mut table = Table::new(
        &format!("e10_greedy_vs_lp_{label}"),
        &[
            "r",
            "degree_lower_bound",
            "lp4_lower_bound",
            "lp_rounding_cost",
            "lp_rounding_ratio",
            "greedy_cost",
            "greedy_ratio",
            "buy_all",
        ],
    );
    for &r in &[0usize, 1, 2, 3] {
        let rounded = FtSpannerBuilder::new("two-spanner-lp")
            .faults(r)
            .build_with_rng(GraphInput::from(&graph), rng)
            .expect("relaxation solvable");
        let greedy = FtSpannerBuilder::new("two-spanner-greedy")
            .faults(r)
            .build_with_rng(GraphInput::from(&graph), rng)
            .expect("the greedy cover always succeeds");
        assert!(verify::is_ft_two_spanner(
            &graph,
            rounded.arc_set().unwrap(),
            r
        ));
        assert!(verify::is_ft_two_spanner(
            &graph,
            greedy.arc_set().unwrap(),
            r
        ));
        let lp = rounded.lp_objective.unwrap().max(1e-9);
        table.row(&[
            r.to_string(),
            fmt(directed_cost_lower_bound(&graph, r), 1),
            fmt(rounded.lp_objective.unwrap(), 2),
            fmt(rounded.cost, 1),
            fmt(rounded.cost / lp, 2),
            fmt(greedy.cost, 1),
            fmt(greedy.cost / lp, 2),
            fmt(graph.total_cost(), 1),
        ]);
    }
    table.print_and_save();
    println!(
        "Expected shape: both algorithms stay within a small factor of the LP lower bound; the\n\
         greedy heuristic is competitive on these instances but carries no worst-case guarantee.\n"
    );
}

fn main() {
    let seed = ftspan_bench::seed_from_args(10);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    run(generate::WeightKind::Unit, "unit_costs", &mut rng);
    run(
        generate::WeightKind::Uniform {
            min: 1.0,
            max: 10.0,
        },
        "random_costs",
        &mut rng,
    );
}
