//! Experiment E5 — Sections 3.1–3.2: integrality gaps of the relaxations.
//!
//! Two instances from the paper:
//!
//! * the costly-arc gadget (Section 3.2): LP (3) has an `Ω(r)` gap, LP (4)
//!   — with the knapsack-cover inequalities — closes it completely;
//! * the complete digraph `K_n` (Section 3.1's motivation): every integral
//!   solution needs `(r+1)·n` arcs while the plain flow relaxation pays far
//!   less, quantifying why a stronger relaxation is needed.

use fault_tolerant_spanners::core::two_spanner::{solve_relaxation, RelaxationConfig};
use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};

fn main() {
    // E5 is deterministic (fixed gadget instances, no randomness); --seed is
    // accepted for interface uniformity with the other experiments.
    let _ = ftspan_bench::seed_from_args(5);

    // --- The Section 3.2 gadget ------------------------------------------
    let expensive = 100.0;
    let mut gadget_table = Table::new(
        "e5_gap_gadget",
        &["r", "opt", "lp3", "lp4", "gap_lp3", "gap_lp4", "kc_cuts"],
    );
    for &r in &[1usize, 2, 4, 8] {
        let g = generate::gap_gadget(r, expensive).expect("r >= 1");
        let opt = expensive + 2.0 * r as f64; // must buy everything
        let lp3 = solve_relaxation(&g, &RelaxationConfig::new(r).without_knapsack_cover())
            .expect("LP (3) solvable");
        let lp4 = solve_relaxation(&g, &RelaxationConfig::new(r)).expect("LP (4) solvable");
        gadget_table.row(&[
            r.to_string(),
            fmt(opt, 1),
            fmt(lp3.objective, 2),
            fmt(lp4.objective, 2),
            fmt(opt / lp3.objective, 2),
            fmt(opt / lp4.objective, 2),
            lp4.cuts.cuts_added.to_string(),
        ]);
    }
    gadget_table.print_and_save();
    println!(
        "Expected shape: gap_lp3 grows linearly with r (the Ω(r) gap of Section 3.2);\n\
         gap_lp4 stays at 1.00 — the knapsack-cover inequalities close the gap.\n"
    );

    // --- The complete digraph --------------------------------------------
    let mut kn_table = Table::new(
        "e5_complete_digraph",
        &["n", "r", "integral_lower_bound", "lp3", "ratio"],
    );
    for &(n, r) in &[(7usize, 1usize), (7, 2), (7, 3), (8, 2), (8, 4)] {
        let g = generate::complete_digraph(n);
        let integral = ((r + 1) * n) as f64;
        match solve_relaxation(&g, &RelaxationConfig::new(r).without_knapsack_cover()) {
            Ok(lp3) => kn_table.row(&[
                n.to_string(),
                r.to_string(),
                fmt(integral, 0),
                fmt(lp3.objective, 2),
                fmt(integral / lp3.objective, 2),
            ]),
            Err(e) => {
                eprintln!("warning: LP (3) on K_{n} with r = {r} not solved: {e}");
                kn_table.row(&[
                    n.to_string(),
                    r.to_string(),
                    fmt(integral, 0),
                    "n/a".to_string(),
                    "n/a".to_string(),
                ]);
            }
        }
    }
    kn_table.print_and_save();
    println!(
        "Expected shape: the integral solution needs (r+1)·n arcs while the fractional\n\
         relaxation pays much less, and the ratio grows with r."
    );
}
