//! Experiment E4 — Theorem 3.3: the approximation ratio of the knapsack-cover
//! LP rounding is independent of `r`, while the DK10 baseline degrades.
//!
//! For each `r` the binary solves both relaxations on the same directed
//! instance, rounds both, and reports cost / LP-lower-bound ratios. The
//! paper's claim is that the new algorithm's ratio stays `O(log n)` (flat in
//! `r`) whereas the previous approach pays an extra factor `r` (visible both
//! in its inflation `α = Θ(r log n)` and in its realized cost).

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run(costs: generate::WeightKind, label: &str, rng: &mut ChaCha8Rng) {
    let n = 16;
    let graph = generate::directed_gnp(n, 0.4, costs, rng);
    println!(
        "E4 ({label}): n = {}, arcs = {}, total cost {:.1}\n",
        graph.node_count(),
        graph.arc_count(),
        graph.total_cost()
    );

    let mut table = Table::new(
        &format!("e4_k2_approx_{label}"),
        &[
            "r",
            "lp4_lower_bound",
            "ours_cost",
            "ours_ratio",
            "ours_alpha",
            "dk10_cost",
            "dk10_ratio",
            "dk10_alpha",
            "buy_all",
        ],
    );
    for &r in &[0usize, 1, 2, 3, 4] {
        let ours = FtSpannerBuilder::new("two-spanner-lp")
            .faults(r)
            .build_with_rng(GraphInput::from(&graph), rng)
            .expect("relaxation solvable");
        let dk10 = FtSpannerBuilder::new("dk10")
            .faults(r)
            .build_with_rng(GraphInput::from(&graph), rng)
            .expect("relaxation solvable");
        assert!(verify::is_ft_two_spanner(
            &graph,
            ours.arc_set().unwrap(),
            r
        ));
        assert!(verify::is_ft_two_spanner(
            &graph,
            dk10.arc_set().unwrap(),
            r
        ));
        // Both ratios are measured against the *stronger* LP (4) lower bound
        // so they are directly comparable.
        let lp4 = ours.lp_objective.unwrap();
        table.row(&[
            r.to_string(),
            fmt(lp4, 2),
            fmt(ours.cost, 1),
            fmt(ours.cost / lp4.max(1e-9), 2),
            fmt(ours.alpha.unwrap(), 2),
            fmt(dk10.cost, 1),
            fmt(dk10.cost / lp4.max(1e-9), 2),
            fmt(dk10.alpha.unwrap(), 2),
            fmt(graph.total_cost(), 1),
        ]);
    }
    table.print_and_save();
    println!(
        "Expected shape: `ours_ratio` stays roughly flat as r grows; `dk10_ratio` (and its alpha)\n\
         grow with r, converging to the buy-everything cost.\n"
    );
}

fn main() {
    let seed = ftspan_bench::seed_from_args(4);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    run(generate::WeightKind::Unit, "unit_costs", &mut rng);
    run(
        generate::WeightKind::Uniform {
            min: 1.0,
            max: 10.0,
        },
        "random_costs",
        &mut rng,
    );
}
