//! Experiment E7 — Theorems 2.3 / 2.4 and 3.9: the distributed algorithms.
//!
//! Part (a): the distributed conversion — measured LOCAL rounds scale as
//! `iterations × O(1)` (the underlying 3-spanner is constant-round), and the
//! output is as fault tolerant as the centralized construction.
//!
//! Part (b): the distributed 2-spanner approximation (Algorithm 2) —
//! measured rounds stay `O(log² n)` and the cost stays within a small factor
//! of the centralized LP lower bound.

use fault_tolerant_spanners::core::two_spanner::{solve_relaxation, RelaxationConfig};
use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(7);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // --- (a) Theorem 2.3: distributed conversion, stretch 3 ---------------
    let mut a = Table::new(
        "e7a_distributed_conversion",
        &[
            "n",
            "m",
            "r",
            "iterations",
            "rounds",
            "messages",
            "edges",
            "valid_sampled",
        ],
    );
    for &(n, r) in &[(50usize, 1usize), (50, 2), (100, 1), (100, 2)] {
        let graph = generate::connected_gnp(
            n,
            (8.0 / n as f64).min(1.0),
            generate::WeightKind::Unit,
            &mut rng,
        );
        let out = FtSpannerBuilder::new("distributed-conversion")
            .faults(r)
            .stretch(3.0)
            .scale(0.25)
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("the distributed conversion accepts stretch-3 requests");
        let report = verify::verify_fault_tolerance_sampled(
            &graph,
            out.edge_set().unwrap(),
            3.0,
            r,
            30,
            &mut rng,
        );
        a.row(&[
            n.to_string(),
            graph.edge_count().to_string(),
            r.to_string(),
            out.iterations.to_string(),
            out.rounds.unwrap().to_string(),
            out.messages.unwrap().to_string(),
            out.size().to_string(),
            report.is_valid().to_string(),
        ]);
    }
    a.print_and_save();
    println!(
        "Expected shape: rounds = 2 × iterations (the black box is constant-round), so the total is\n\
         O(r^3 log n) as in Theorem 2.3, and every output verifies as fault tolerant.\n"
    );

    // --- (b) Theorem 3.9: distributed 2-spanner ---------------------------
    let mut b = Table::new(
        "e7b_distributed_two_spanner",
        &[
            "n",
            "arcs",
            "r",
            "repetitions",
            "rounds",
            "cost",
            "central_lp",
            "ratio",
            "repaired",
        ],
    );
    for &(n, r) in &[(10usize, 0usize), (10, 1), (14, 1)] {
        let graph = generate::directed_gnp(n, 0.4, generate::WeightKind::Unit, &mut rng);
        let central = solve_relaxation(&graph, &RelaxationConfig::new(r)).expect("LP solvable");
        let out = FtSpannerBuilder::new("distributed-two-spanner")
            .faults(r)
            .repetitions(4)
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("cluster LPs solvable");
        assert!(verify::is_ft_two_spanner(&graph, out.arc_set().unwrap(), r));
        b.row(&[
            n.to_string(),
            graph.arc_count().to_string(),
            r.to_string(),
            out.iterations.to_string(),
            out.rounds.unwrap().to_string(),
            fmt(out.cost, 1),
            fmt(central.objective, 2),
            fmt(out.cost / central.objective.max(1e-9), 2),
            out.repaired_arcs.to_string(),
        ]);
    }
    b.print_and_save();
    println!(
        "Expected shape: rounds grow polylogarithmically in n (decomposition + cluster gathering per\n\
         repetition), and the distributed cost stays within an O(log n)-like factor of the centralized\n\
         LP lower bound, as promised by Theorem 3.9."
    );
}
