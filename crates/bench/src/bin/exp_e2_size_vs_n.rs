//! Experiment E2 — Corollary 2.2: spanner size as a function of `n` for a
//! fixed number of faults.
//!
//! The claim: for fixed `r` and `k`, the fault-tolerant spanner size scales
//! like `n^{1+2/(k+1)} log n` — the same `n`-dependence as the plain greedy
//! spanner, only a `poly(r) log n` factor larger.

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use ftspan_spanners::size_bounds;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let r = 2usize;
    let k = 3.0f64;
    println!("E2: r = {r}, k = {k}, average degree ~10, iteration scale 0.25\n");

    let builder = FtSpannerBuilder::new("corollary-2.2")
        .faults(r)
        .stretch(k)
        .scale(0.25);
    let mut table = Table::new(
        "e2_size_vs_n",
        &[
            "n",
            "m",
            "ft_edges",
            "plain_edges",
            "blowup",
            "cor22_bound",
            "edges_per_n^1.5",
        ],
    );
    for &n in &[100usize, 200, 400, 800] {
        let p = (10.0 / n as f64).min(1.0);
        let graph = generate::connected_gnp(n, p, generate::WeightKind::Unit, &mut rng);
        let plain = GreedySpanner::new(k).build(&graph, &mut rng);
        let report = builder
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("corollary-2.2 accepts undirected inputs");
        table.row(&[
            n.to_string(),
            graph.edge_count().to_string(),
            report.size().to_string(),
            plain.len().to_string(),
            fmt(report.size() as f64 / plain.len().max(1) as f64, 2),
            fmt(size_bounds::corollary_2_2_bound(n, r, k), 0),
            fmt(report.size() as f64 / (n as f64).powf(1.5), 3),
        ]);
    }
    table.print_and_save();
    println!("Expected shape: `edges_per_n^1.5` stays roughly flat (up to the log n factor and graph density effects).");
}
