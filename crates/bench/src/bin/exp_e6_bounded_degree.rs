//! Experiment E6 — Theorem 3.4: on bounded-degree graphs with unit costs the
//! inflation can be reduced from `O(log n)` to `O(log Δ)` using the
//! constructive Lovász Local Lemma.
//!
//! The binary compares the Theorem 3.3 rounding (`α = C ln n`) against the
//! Theorem 3.4 Moser–Tardos variant (`α = C ln Δ`) on near-regular graphs of
//! increasing degree, reporting cost ratios against the common LP lower
//! bound.

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(6);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 20;
    let r = 1usize;
    println!("E6: n = {n}, r = {r}, unit costs, near-regular graphs\n");

    let mut table = Table::new(
        "e6_bounded_degree",
        &[
            "delta",
            "arcs",
            "lp_lower_bound",
            "logn_cost",
            "logn_ratio",
            "logn_alpha",
            "lll_cost",
            "lll_ratio",
            "lll_alpha",
            "lll_resamples",
        ],
    );
    for &d in &[3usize, 4, 6, 8] {
        let undirected = generate::random_near_regular(n, d, &mut rng);
        let graph = DiGraph::from_graph(&undirected);
        let theorem33 = FtSpannerBuilder::new("two-spanner-lp")
            .faults(r)
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("relaxation solvable");
        let lll = FtSpannerBuilder::new("two-spanner-lll")
            .faults(r)
            .degree_bound(graph.max_degree())
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("relaxation solvable");
        assert!(verify::is_ft_two_spanner(
            &graph,
            theorem33.arc_set().unwrap(),
            r
        ));
        assert!(verify::is_ft_two_spanner(&graph, lll.arc_set().unwrap(), r));
        let lp = lll.lp_objective.unwrap();
        table.row(&[
            graph.max_degree().to_string(),
            graph.arc_count().to_string(),
            fmt(lp, 2),
            fmt(theorem33.cost, 1),
            fmt(theorem33.cost / lp.max(1e-9), 2),
            fmt(theorem33.alpha.unwrap(), 2),
            fmt(lll.cost, 1),
            fmt(lll.ratio_vs_lp().unwrap(), 2),
            fmt(lll.alpha.unwrap(), 2),
            lll.resamples.unwrap().to_string(),
        ]);
    }
    table.print_and_save();
    println!(
        "Expected shape: `lll_alpha` tracks ln Δ (smaller than `logn_alpha` = 3 ln n for sparse graphs)\n\
         and the LLL cost/ratio is no worse — usually better — than the log n rounding, with only a\n\
         handful of resampling steps."
    );
}
