//! Experiment E11 — how many of Theorem 2.1's `Θ(r³ log n)` iterations are
//! needed in practice.
//!
//! The adaptive construction (registry name `adaptive`) runs the conversion
//! in batches and stops once the union passes a verification battery. This
//! binary reports, for growing `r`, the iterations the adaptive construction
//! used, the theorem's budget, and the sizes of both outputs — quantifying
//! how conservative the union-bound analysis is (the ablation DESIGN.md
//! calls out).

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(11);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 80;
    let graph = generate::connected_gnp(n, 0.12, generate::WeightKind::Unit, &mut rng);
    let k = 3.0;
    println!(
        "E11: n = {}, m = {}, stretch {k}\n",
        graph.node_count(),
        graph.edge_count()
    );

    let mut table = Table::new(
        "e11_adaptive_alpha",
        &[
            "r",
            "adaptive_iters",
            "theorem_iters",
            "budget_fraction",
            "adaptive_edges",
            "full_alpha_edges",
            "verified",
            "valid_exhaustive_r1",
        ],
    );

    for &r in &[1usize, 2, 3] {
        let adaptive = FtSpannerBuilder::new("adaptive")
            .faults(r)
            .stretch(k)
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("the adaptive conversion accepts undirected inputs");
        let full = FtSpannerBuilder::new("corollary-2.2")
            .faults(r)
            .stretch(k)
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("corollary-2.2 accepts undirected inputs");
        // Exhaustive re-verification is affordable only at r = 1 on this
        // instance; report it where available, "-" otherwise.
        let exhaustive = if r == 1 {
            verify::is_fault_tolerant_k_spanner(&graph, adaptive.edge_set().unwrap(), k, r)
                .to_string()
        } else {
            "-".to_string()
        };
        table.row(&[
            r.to_string(),
            adaptive.iterations.to_string(),
            adaptive.theorem_iterations.unwrap().to_string(),
            fmt(adaptive.budget_fraction(), 3),
            adaptive.size().to_string(),
            full.size().to_string(),
            adaptive.verified.unwrap().to_string(),
            exhaustive,
        ]);
    }
    table.print_and_save();
    println!(
        "Expected shape: the adaptive construction needs a small fraction of the theorem's\n\
         iteration budget while producing a spanner of comparable size that still verifies."
    );
}
