//! Experiment E9 — edge-fault tolerance (extension of Theorem 2.1).
//!
//! The conversion theorem adapts to *edge* faults by sampling edges instead
//! of vertices into the oversized fault set; the analysis needs only
//! `Θ(r² log n)` iterations (one factor of `r` less). This binary compares
//! the two models on the same graph — the same `conversion` algorithm,
//! switched by the request's fault model — reporting output size,
//! iterations, and validity (exhaustive for `r ≤ 2` on the small instance,
//! sampled otherwise).

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::Table;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(9);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 60;
    let graph = generate::connected_gnp(n, 0.15, generate::WeightKind::Unit, &mut rng);
    let k = 3.0;
    println!(
        "E9: n = {}, m = {}, stretch {k}, iteration scale 0.25\n",
        graph.node_count(),
        graph.edge_count()
    );

    let mut table = Table::new(
        "e9_edge_faults",
        &[
            "r",
            "edge_ft_edges",
            "edge_ft_iters",
            "vertex_ft_edges",
            "vertex_ft_iters",
            "plain_edges",
            "lower_bound",
            "edge_ft_valid",
        ],
    );

    let plain = GreedySpanner::new(k).build(&graph, &mut rng);
    let builder = FtSpannerBuilder::new("conversion").stretch(k).scale(0.25);
    for &r in &[1usize, 2, 3, 4] {
        let edge_result = builder
            .clone()
            .faults(r)
            .edge_faults()
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("the conversion accepts edge-fault requests");
        let vertex_result = builder
            .clone()
            .faults(r)
            .vertex_faults()
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("the conversion accepts vertex-fault requests");
        let edges = edge_result.edge_set().unwrap();
        let valid = if r <= 2 {
            verify::verify_edge_fault_tolerance_exhaustive(&graph, edges, k, r).is_valid()
        } else {
            verify::verify_edge_fault_tolerance_sampled(&graph, edges, k, r, 40, &mut rng)
                .is_valid()
        };
        table.row(&[
            r.to_string(),
            edge_result.size().to_string(),
            edge_result.iterations.to_string(),
            vertex_result.size().to_string(),
            vertex_result.iterations.to_string(),
            plain.len().to_string(),
            vertex_fault_size_lower_bound(&graph, r).to_string(),
            valid.to_string(),
        ]);
    }
    table.print_and_save();
    println!(
        "Expected shape: both models' sizes grow slowly with r and stay above the degree lower\n\
         bound; the edge-fault construction uses fewer iterations (Θ(r² log n) vs Θ(r³ log n))."
    );
}
