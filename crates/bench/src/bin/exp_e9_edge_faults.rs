//! Experiment E9 — edge-fault tolerance (extension of Theorem 2.1).
//!
//! The conversion theorem adapts to *edge* faults by sampling edges instead
//! of vertices into the oversized fault set; the analysis needs only
//! `Θ(r² log n)` iterations (one factor of `r` less). This binary compares
//! the two models on the same graph: output size, iterations, and validity
//! (exhaustive for `r ≤ 2` on the small instance, sampled otherwise).

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::Table;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let n = 60;
    let graph = generate::connected_gnp(n, 0.15, generate::WeightKind::Unit, &mut rng);
    let k = 3.0;
    println!(
        "E9: n = {}, m = {}, stretch {k}, iteration scale 0.25\n",
        graph.node_count(),
        graph.edge_count()
    );

    let mut table = Table::new(
        "e9_edge_faults",
        &[
            "r",
            "edge_ft_edges",
            "edge_ft_iters",
            "vertex_ft_edges",
            "vertex_ft_iters",
            "plain_edges",
            "lower_bound",
            "edge_ft_valid",
        ],
    );

    let plain = GreedySpanner::new(k).build(&graph, &mut rng);
    for &r in &[1usize, 2, 3, 4] {
        let edge_params = EdgeFaultParams::new(r).with_scale(0.25);
        let edge_result =
            edge_fault_tolerant_spanner(&graph, &GreedySpanner::new(k), &edge_params, &mut rng);
        let vertex_params = ConversionParams::new(r).with_scale(0.25);
        let vertex_result = FaultTolerantConverter::new(vertex_params).build(
            &graph,
            &GreedySpanner::new(k),
            &mut rng,
        );
        let valid = if r <= 2 {
            verify::verify_edge_fault_tolerance_exhaustive(&graph, &edge_result.edges, k, r)
                .is_valid()
        } else {
            verify::verify_edge_fault_tolerance_sampled(&graph, &edge_result.edges, k, r, 40, &mut rng)
                .is_valid()
        };
        table.row(&[
            r.to_string(),
            edge_result.size().to_string(),
            edge_result.iterations.to_string(),
            vertex_result.size().to_string(),
            vertex_result.iterations.to_string(),
            plain.len().to_string(),
            vertex_fault_size_lower_bound(&graph, r).to_string(),
            valid.to_string(),
        ]);
    }
    table.print_and_save();
    println!(
        "Expected shape: both models' sizes grow slowly with r and stay above the degree lower\n\
         bound; the edge-fault construction uses fewer iterations (Θ(r² log n) vs Θ(r³ log n))."
    );
}
