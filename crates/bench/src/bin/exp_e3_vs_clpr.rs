//! Experiment E3 — the conversion theorem versus the CLPR09-style baseline.
//!
//! The paper's motivation: the previous construction's size bound grows
//! exponentially in `r` (through its `k^{r+1}` factor / the union over
//! `O(n^r)` fault sets), while Theorem 2.1 pays only `poly(r) · log n`. This
//! binary builds both — selected by registry name — on the same graph and
//! also prints the two theoretical bounds.

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use ftspan_spanners::size_bounds;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 60;
    let k = 3.0;
    let graph = generate::connected_gnp(n, 0.12, generate::WeightKind::Unit, &mut rng);
    println!(
        "E3: n = {}, m = {}, k = {} (CLPR-style = union of greedy spanners over all fault sets)\n",
        graph.node_count(),
        graph.edge_count(),
        k
    );

    let mut table = Table::new(
        "e3_vs_clpr",
        &[
            "r",
            "ours_edges",
            "ours_iterations",
            "clpr_edges",
            "clpr_fault_sets",
            "cor22_bound",
            "clpr09_bound",
        ],
    );
    for &r in &[0usize, 1, 2] {
        let ours = if r == 0 {
            // r = 0 is just the plain spanner; the conversion is not needed.
            let plain = GreedySpanner::new(k).build(&graph, &mut rng);
            (plain.len(), 1usize)
        } else {
            let report = FtSpannerBuilder::new("conversion")
                .faults(r)
                .stretch(k)
                .scale(0.25)
                .build_with_rng(GraphInput::from(&graph), &mut rng)
                .expect("the conversion accepts undirected inputs");
            (report.size(), report.iterations)
        };
        let clpr = FtSpannerBuilder::new("clpr09")
            .faults(r)
            .stretch(k)
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("the CLPR09 baseline accepts undirected inputs");
        table.row(&[
            r.to_string(),
            ours.0.to_string(),
            ours.1.to_string(),
            clpr.size().to_string(),
            clpr.iterations.to_string(),
            fmt(size_bounds::corollary_2_2_bound(n, r, k), 0),
            fmt(size_bounds::clpr09_bound(n, r, 2), 0),
        ]);
    }
    table.print_and_save();
    println!(
        "Expected shape: `clpr_fault_sets` (the baseline's work) explodes combinatorially with r, and the\n\
         clpr09_bound grows exponentially, while ours grows polynomially. Measured edge counts are capped\n\
         by m on a fixed graph, so the contrast shows most clearly in the bounds and the amount of work."
    );
}
