//! Experiment E13 — build-once/query-many serving throughput.
//!
//! The constructions exist so the surviving spanner can *answer queries*
//! after faults strike. This experiment builds one [`FtSpanner`] artifact per
//! graph size, registers it in the batched serving [`Engine`], and measures
//! sustained queries/sec for distance queries as a function of the network
//! size `n` and the per-query fault-set size `|F|`, plus the one-off build
//! and artifact-packing cost they amortize.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ftspan-bench --bin exp_e13_serving [-- --seed N]
//! ```

use fault_tolerant_spanners::prelude::*;
use fault_tolerant_spanners::{Engine, Query};
use ftspan_bench::{fmt, Table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let seed = ftspan_bench::seed_from_args(13);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let faults = 2usize;
    let queries_per_batch = 2000usize;
    println!(
        "E13: conversion artifacts (k = 3, r = {faults}), {queries_per_batch} distance \
         queries per batch, seed {seed}\n"
    );

    let mut table = Table::new(
        "e13_serving",
        &[
            "n",
            "edges",
            "spanner_edges",
            "|F|",
            "build_ms",
            "pack_ms",
            "batch_ms",
            "queries_per_sec",
        ],
    );

    for &n in &[60usize, 120, 240] {
        let graph = generate::connected_gnp(
            n,
            (8.0 / n as f64).min(0.5),
            generate::WeightKind::Unit,
            &mut rng,
        );

        let build_start = Instant::now();
        let report = FtSpannerBuilder::new("conversion")
            .faults(faults)
            .scale(0.25)
            .build_with_rng(GraphInput::from(&graph), &mut rng)
            .expect("the conversion accepts undirected inputs");
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        let pack_start = Instant::now();
        let artifact = FtSpanner::from_report(&graph, &report).expect("undirected report");
        let pack_ms = pack_start.elapsed().as_secs_f64() * 1e3;
        let spanner_edges = artifact.spanner_edge_count();

        let mut engine = Engine::new();
        engine.register("net", artifact);

        for fault_count in [0usize, 1, faults] {
            // A reproducible batch of random queries, each scoped to its own
            // random fault set of the requested size.
            let batch: Vec<Query> = (0..queries_per_batch)
                .map(|_| {
                    let f = faults::sample_fault_set(n, fault_count, &mut rng);
                    let u = NodeId::new(rng.gen_range(0..n));
                    let v = NodeId::new(rng.gen_range(0..n));
                    Query::distance("net", f.nodes().to_vec(), u, v)
                })
                .collect();
            let batch_start = Instant::now();
            let results = engine.run_batch(&batch);
            let batch_s = batch_start.elapsed().as_secs_f64();
            assert_eq!(results.len(), queries_per_batch);
            assert!(results.iter().all(|r| r.is_ok()), "a serving query failed");
            table.row(&[
                n.to_string(),
                graph.edge_count().to_string(),
                spanner_edges.to_string(),
                fault_count.to_string(),
                fmt(build_ms, 1),
                fmt(pack_ms, 2),
                fmt(batch_s * 1e3, 1),
                fmt(queries_per_batch as f64 / batch_s, 0),
            ]);
        }
    }
    table.print_and_save();
    println!(
        "Expected shape: queries/sec falls with n (each query is a Dijkstra over the\n\
         spanner) and is insensitive to |F| (masking is O(1) per edge); the one-off\n\
         build cost dwarfs per-query cost, which is the point of build-once/query-many."
    );
}
