//! Experiment E1 — Theorem 2.1 / Corollary 2.2: spanner size as a function of
//! the number of tolerated faults `r`.
//!
//! The paper's claim: the size of the `r`-fault-tolerant `k`-spanner grows
//! only *polynomially* in `r` (like `r^{2-2/(k+1)} log n` times the plain
//! spanner size). This binary measures the constructed sizes for `k ∈ {3, 5}`
//! and `r ∈ {1..8}` on a random graph and prints them next to the Corollary
//! 2.2 bound.

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use ftspan_spanners::size_bounds;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = 200;
    let graph = generate::connected_gnp(n, 0.15, generate::WeightKind::Unit, &mut rng);
    println!(
        "E1: n = {}, m = {}, iteration scale 0.25 (validity re-checked by sampling)\n",
        graph.node_count(),
        graph.edge_count()
    );

    let mut table = Table::new(
        "e1_size_vs_r",
        &[
            "k",
            "r",
            "edges",
            "plain_edges",
            "blowup",
            "cor22_bound",
            "valid_sampled",
        ],
    );

    for &k in &[3.0f64, 5.0] {
        let plain = GreedySpanner::new(k).build(&graph, &mut rng);
        for &r in &[1usize, 2, 3, 4, 6, 8] {
            let report = FtSpannerBuilder::new("conversion")
                .faults(r)
                .stretch(k)
                .scale(0.25)
                .build_with_rng(GraphInput::from(&graph), &mut rng)
                .expect("the conversion accepts undirected inputs");
            let check = verify::verify_fault_tolerance_sampled(
                &graph,
                report.edge_set().unwrap(),
                k,
                r,
                30,
                &mut rng,
            );
            table.row(&[
                fmt(k, 0),
                r.to_string(),
                report.size().to_string(),
                plain.len().to_string(),
                fmt(report.size() as f64 / plain.len() as f64, 2),
                fmt(size_bounds::corollary_2_2_bound(n, r, k), 0),
                check.is_valid().to_string(),
            ]);
        }
    }
    table.print_and_save();
    println!("Expected shape: `blowup` grows polynomially (roughly r^{{2-2/(k+1)}} · log n), not exponentially.");
}
