//! `ftspan_loadgen` — seeded load generator for `ftspan_serve`.
//!
//! ```text
//! ftspan_loadgen --addr HOST:PORT [--duration-secs N] [--connections C]
//!                [--batch B] [--seed N] [--zipf-exponent F] [--scopes S]
//!                [--burst K] [--update-stream] [--churn D]
//!                [--update-artifact NAME] [--min-qps Q] [--out PATH]
//!                [--server-stats] [--shutdown]
//! ```
//!
//! * `--addr` — server to drive (required).
//! * `--duration-secs` — how long to generate load (default 2).
//! * `--connections` — concurrent client connections (default 2).
//! * `--batch` — queries per request frame (default 32).
//! * `--seed` — RNG seed; the traffic is fully reproducible (default 2011).
//! * `--zipf-exponent` — skew of the source popularity distribution
//!   (default 1.0; 0 = uniform).
//! * `--scopes` — distinct fault scopes the traffic rotates through
//!   (default 4; repeated scopes exercise the server's planner groups).
//! * `--burst` — open-loop burstiness: each connection sends `K` requests
//!   back-to-back, then yields (default 1 = smooth).
//! * `--update-stream` — mixed read/write traffic: alongside the query
//!   connections, one writer connection pushes seeded `ApplyDeltas` batches
//!   at a dynamic artifact for the whole run, so every warm swap happens
//!   under live query load. The writer only deletes/reweights edges it
//!   inserted itself, so its churn stream stays valid without knowing the
//!   server's graph; an insert that collides with an existing edge is a
//!   *typed* rejection the server must answer cleanly (counted, not fatal).
//!   Apply latency lands in its own histogram, reported separately from
//!   query latency.
//! * `--churn` — edge deltas per `ApplyDeltas` batch (default 4; only with
//!   `--update-stream`).
//! * `--update-artifact` — artifact the writer targets (default: the
//!   server's first artifact; it must be served dynamic, e.g. via
//!   `ftspan_serve --dynamic`, or every apply is rejected).
//! * `--min-qps` — exit 1 if measured throughput falls below this (CI gate).
//! * `--out` — write a `BENCH.json`-compatible report here.
//! * `--server-stats` — after the run, fetch and print the server's wire
//!   [`ServerStats`](ftspan_net::ServerStats): queue/batch counters plus the
//!   engine's planner groups, planner units and source-cache hit rate.
//! * `--shutdown` — send a graceful-shutdown frame when done (CI smoke).
//!
//! The traffic mix is Zipf-distributed sources, rotating fault scopes and
//! mixed query kinds — the all-to-all-with-hot-spots shape network serving
//! actually sees. Per-request round-trip latency lands in an HDR-style
//! histogram; the report carries throughput plus p50/p99/p999 in
//! microseconds. Any `Overloaded` response is counted (and retried after a
//! beat) — it is backpressure, not an error. Protocol errors are fatal.

use fault_tolerant_spanners::prelude::*;
use fault_tolerant_spanners::Query;
use ftspan_bench::hist::Histogram;
use ftspan_bench::scenarios::{BenchReport, Profile, ScenarioConfig, ScenarioResult};
use ftspan_bench::Table;
use ftspan_net::{ArtifactInfo, BatchReply, Client};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    duration: Duration,
    connections: usize,
    batch: usize,
    seed: u64,
    zipf_exponent: f64,
    scopes: usize,
    burst: usize,
    update_stream: bool,
    churn: usize,
    update_artifact: Option<String>,
    min_qps: Option<f64>,
    out: Option<std::path::PathBuf>,
    server_stats: bool,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        duration: Duration::from_secs(2),
        connections: 2,
        batch: 32,
        seed: 2011,
        zipf_exponent: 1.0,
        scopes: 4,
        burst: 1,
        update_stream: false,
        churn: 4,
        update_artifact: None,
        min_qps: None,
        out: None,
        server_stats: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value_of("--addr")),
            "--duration-secs" => {
                args.duration = Duration::from_secs_f64(
                    value_of("--duration-secs")
                        .parse()
                        .expect("--duration-secs expects a number"),
                );
            }
            "--connections" => {
                args.connections = value_of("--connections")
                    .parse()
                    .expect("--connections expects a positive integer");
            }
            "--batch" => {
                args.batch = value_of("--batch")
                    .parse()
                    .expect("--batch expects a positive integer");
            }
            "--seed" => args.seed = value_of("--seed").parse().expect("--seed expects a u64"),
            "--zipf-exponent" => {
                args.zipf_exponent = value_of("--zipf-exponent")
                    .parse()
                    .expect("--zipf-exponent expects a number");
            }
            "--scopes" => {
                args.scopes = value_of("--scopes")
                    .parse()
                    .expect("--scopes expects a positive integer");
            }
            "--burst" => {
                args.burst = value_of("--burst")
                    .parse()
                    .expect("--burst expects a positive integer");
            }
            "--update-stream" => args.update_stream = true,
            "--churn" => {
                args.churn = value_of("--churn")
                    .parse()
                    .expect("--churn expects a positive integer");
            }
            "--update-artifact" => args.update_artifact = Some(value_of("--update-artifact")),
            "--min-qps" => {
                args.min_qps = Some(
                    value_of("--min-qps")
                        .parse()
                        .expect("--min-qps expects a number"),
                );
            }
            "--out" => args.out = Some(value_of("--out").into()),
            "--server-stats" => args.server_stats = true,
            "--shutdown" => args.shutdown = true,
            other => panic!("unknown argument `{other}` (see the ftspan_loadgen docs)"),
        }
    }
    args
}

/// Seeded traffic source: Zipf-popular query sources, rotating fault
/// scopes, mixed query kinds, all against the server's own artifact list.
struct TrafficSource {
    rng: ChaCha8Rng,
    artifacts: Vec<ArtifactInfo>,
    /// Per-artifact cumulative Zipf weights over sources.
    cumulative: Vec<Vec<f64>>,
    scopes: Vec<Vec<NodeId>>,
}

impl TrafficSource {
    fn new(seed: u64, artifacts: Vec<ArtifactInfo>, zipf_exponent: f64, scopes: usize) -> Self {
        let cumulative = artifacts
            .iter()
            .map(|a| {
                let n = (a.nodes as usize).max(1);
                (0..n)
                    .scan(0.0f64, |acc, i| {
                        *acc += 1.0 / ((i as f64 + 1.0).powf(zipf_exponent));
                        Some(*acc)
                    })
                    .collect()
            })
            .collect();
        // Fault scopes are derived from the first vertex-fault artifact's
        // size; edge-fault artifacts are queried fault-free (the generator
        // has no edge list to draw real edges from).
        let n = artifacts
            .iter()
            .find(|a| a.fault_model == fault_tolerant_spanners::core::FaultModel::Vertex)
            .map(|a| a.nodes as usize)
            .unwrap_or(1)
            .max(1);
        let scopes = (0..scopes.max(1))
            .map(|s| {
                if s == 0 {
                    Vec::new() // the fault-free scope is always in the mix
                } else {
                    vec![NodeId::new((s * 7 + 1) % n)]
                }
            })
            .collect();
        TrafficSource {
            rng: ChaCha8Rng::seed_from_u64(seed),
            artifacts,
            cumulative,
            scopes,
        }
    }

    fn zipf_node(&mut self, artifact: usize) -> NodeId {
        let cumulative = &self.cumulative[artifact];
        let total = *cumulative.last().expect("artifacts have nodes");
        let x: f64 = self.rng.gen::<f64>() * total;
        NodeId::new(
            cumulative
                .partition_point(|&c| c < x)
                .min(cumulative.len() - 1),
        )
    }

    fn batch(&mut self, size: usize) -> Vec<Query> {
        let mut queries = Vec::with_capacity(size);
        for _ in 0..size {
            let a = self.rng.gen_range(0..self.artifacts.len());
            let u = self.zipf_node(a);
            let v = NodeId::new(self.rng.gen_range(0..self.artifacts[a].nodes.max(1)) as usize);
            let vertex_faults =
                self.artifacts[a].fault_model == fault_tolerant_spanners::core::FaultModel::Vertex;
            let scope = if vertex_faults {
                let s = self.rng.gen_range(0..self.scopes.len());
                self.scopes[s].clone()
            } else {
                Vec::new()
            };
            let name = self.artifacts[a].name.as_str();
            queries.push(match self.rng.gen_range(0..8u32) {
                0 => Query::certificate(name, scope, u, v),
                1 => Query::path(name, scope, u, v),
                _ => Query::distance(name, scope, u, v),
            });
        }
        queries
    }
}

struct WorkerOutcome {
    latency_us: Histogram,
    queries: u64,
    query_errors: u64,
    overloaded: u64,
    protocol_errors: u64,
}

#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: &str,
    deadline: Instant,
    stop: &AtomicBool,
    batch: usize,
    burst: usize,
    seed: u64,
    zipf_exponent: f64,
    scopes: usize,
) -> Result<WorkerOutcome, ftspan_net::NetError> {
    let mut client = Client::connect(addr)?;
    let artifacts = client.artifacts()?;
    if artifacts.is_empty() {
        return Err(ftspan_net::NetError::Io {
            message: "server holds no artifacts".into(),
        });
    }
    let mut source = TrafficSource::new(seed, artifacts, zipf_exponent, scopes);
    let mut outcome = WorkerOutcome {
        latency_us: Histogram::new(),
        queries: 0,
        query_errors: 0,
        overloaded: 0,
        protocol_errors: 0,
    };
    'open_loop: while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        // Open-loop burst: `burst` requests back-to-back, then yield once,
        // approximating correlated arrivals instead of a smooth closed loop.
        for _ in 0..burst {
            let queries = source.batch(batch);
            let start = Instant::now();
            let reply = match client.run_batch(&queries) {
                Ok(reply) => reply,
                Err(_) => {
                    outcome.protocol_errors += 1;
                    break 'open_loop;
                }
            };
            let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            match reply {
                BatchReply::Results(results) => {
                    outcome.latency_us.record(elapsed_us);
                    outcome.queries += results.len() as u64;
                    outcome.query_errors += results.iter().filter(|r| r.is_err()).count() as u64;
                }
                BatchReply::Overloaded => {
                    // Backpressure, not an error: back off for a beat.
                    outcome.overloaded += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                BatchReply::ShuttingDown => break 'open_loop,
            }
        }
        std::thread::yield_now();
    }
    Ok(outcome)
}

struct UpdateOutcome {
    apply_us: Histogram,
    applies: u64,
    deltas_applied: u64,
    apply_rejected: u64,
    rebuilds: u64,
    protocol_errors: u64,
}

/// The writer connection behind `--update-stream`: an open loop of seeded
/// `ApplyDeltas` batches against one artifact. The writer keeps a private
/// set of edges it has inserted — deletes and reweights only ever touch
/// those, so the stream stays valid against a graph it cannot see. Inserts
/// draw random vertex pairs; one that collides with a base-graph edge makes
/// the whole batch a typed rejection (applies are atomic), in which case the
/// private set is left unchanged and the collision is counted.
fn drive_updates(
    addr: &str,
    deadline: Instant,
    stop: &AtomicBool,
    churn: usize,
    seed: u64,
    artifact: Option<String>,
) -> Result<UpdateOutcome, ftspan_net::NetError> {
    let mut client = Client::connect(addr)?;
    let artifacts = client.artifacts()?;
    let target = match artifact {
        Some(name) => name,
        None => {
            let Some(first) = artifacts.first() else {
                return Err(ftspan_net::NetError::Io {
                    message: "server holds no artifacts".into(),
                });
            };
            first.name.clone()
        }
    };
    let n = artifacts
        .iter()
        .find(|a| a.name == target)
        .map(|a| (a.nodes as usize).max(2))
        .unwrap_or(2);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Edges this writer has successfully inserted (normalized u < v), with
    // their current weight.
    let mut owned: Vec<((usize, usize), f64)> = Vec::new();
    let mut outcome = UpdateOutcome {
        apply_us: Histogram::new(),
        applies: 0,
        deltas_applied: 0,
        apply_rejected: 0,
        rebuilds: 0,
        protocol_errors: 0,
    };
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        // Build the batch against a scratch copy so a rejected batch leaves
        // the committed set untouched.
        let mut scratch = owned.clone();
        let mut deltas = Vec::with_capacity(churn);
        for _ in 0..churn {
            match rng.gen_range(0..4u32) {
                0 if !scratch.is_empty() => {
                    let ((a, b), _) = scratch.swap_remove(rng.gen_range(0..scratch.len()));
                    deltas.push(EdgeDelta::Delete {
                        u: NodeId::new(a),
                        v: NodeId::new(b),
                    });
                }
                1 if !scratch.is_empty() => {
                    let pick = rng.gen_range(0..scratch.len());
                    let entry = &mut scratch[pick];
                    entry.1 += 0.25;
                    deltas.push(EdgeDelta::Reweight {
                        u: NodeId::new(entry.0 .0),
                        v: NodeId::new(entry.0 .1),
                        weight: entry.1,
                    });
                }
                _ => {
                    for _ in 0..16 {
                        let a = rng.gen_range(0..n);
                        let b = rng.gen_range(0..n);
                        if a == b {
                            continue;
                        }
                        let pair = (a.min(b), a.max(b));
                        if scratch.iter().any(|(p, _)| *p == pair) {
                            continue;
                        }
                        let weight = 1.0 + rng.gen::<f64>();
                        scratch.push((pair, weight));
                        deltas.push(EdgeDelta::Insert {
                            u: NodeId::new(pair.0),
                            v: NodeId::new(pair.1),
                            weight,
                        });
                        break;
                    }
                }
            }
        }
        if deltas.is_empty() {
            continue;
        }

        let start = Instant::now();
        match client.apply_deltas(&target, &deltas) {
            Ok(Ok(info)) => {
                let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                outcome.apply_us.record(elapsed_us);
                outcome.applies += 1;
                outcome.deltas_applied += info.applied;
                outcome.rebuilds += u64::from(info.rebuilt);
                owned = scratch;
            }
            Ok(Err(_)) => {
                // A typed rejection: an insert hit an existing base-graph
                // edge (or the artifact is not dynamic). Nothing applied;
                // keep the committed set and roll fresh dice next round.
                outcome.apply_rejected += 1;
            }
            Err(_) => {
                outcome.protocol_errors += 1;
                break;
            }
        }
        std::thread::yield_now();
    }
    Ok(outcome)
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(addr) = args.addr else {
        eprintln!("ftspan_loadgen: --addr HOST:PORT is required");
        return ExitCode::FAILURE;
    };

    let stop = Arc::new(AtomicBool::new(false));
    let failed = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + args.duration;
    let start = Instant::now();
    let workers: Vec<_> = (0..args.connections.max(1))
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let failed = Arc::clone(&failed);
            let (batch, burst) = (args.batch.max(1), args.burst.max(1));
            let (zipf, scopes) = (args.zipf_exponent, args.scopes);
            // Distinct per-connection seeds keep the streams independent
            // while the whole run stays reproducible from --seed.
            let seed = args
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            std::thread::spawn(move || {
                match drive_connection(&addr, deadline, &stop, batch, burst, seed, zipf, scopes) {
                    Ok(outcome) => Some(outcome),
                    Err(e) => {
                        eprintln!("ftspan_loadgen: connection {i} failed: {e}");
                        failed.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            })
        })
        .collect();

    let updater = args.update_stream.then(|| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let failed = Arc::clone(&failed);
        let churn = args.churn.max(1);
        let artifact = args.update_artifact.clone();
        // A seed stream disjoint from every query connection's.
        let seed = args.seed ^ 0xD17A_5EED_0F0F_2011;
        std::thread::spawn(move || {
            match drive_updates(&addr, deadline, &stop, churn, seed, artifact) {
                Ok(outcome) => Some(outcome),
                Err(e) => {
                    eprintln!("ftspan_loadgen: update connection failed: {e}");
                    failed.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        })
    });

    let mut latency_us = Histogram::new();
    let mut queries = 0u64;
    let mut query_errors = 0u64;
    let mut overloaded = 0u64;
    let mut protocol_errors = 0u64;
    for worker in workers {
        if let Ok(Some(outcome)) = worker.join() {
            latency_us.merge(&outcome.latency_us);
            queries += outcome.queries;
            query_errors += outcome.query_errors;
            overloaded += outcome.overloaded;
            protocol_errors += outcome.protocol_errors;
        }
    }
    let mut updates: Option<UpdateOutcome> = None;
    if let Some(handle) = updater {
        if let Ok(Some(outcome)) = handle.join() {
            protocol_errors += outcome.protocol_errors;
            updates = Some(outcome);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let qps = if elapsed > 0.0 {
        queries as f64 / elapsed
    } else {
        0.0
    };

    // Fetch server-side counters before any shutdown frame: the planner and
    // cache numbers live on the server, not in this process.
    if args.server_stats {
        match Client::connect(addr.as_str()).and_then(|mut c| c.stats()) {
            Ok(stats) => {
                let engine = stats.engine;
                let mut table = Table::new("server-stats", &["metric", "value"]);
                table.row(&[
                    "connections_accepted".to_string(),
                    stats.connections_accepted.to_string(),
                ]);
                table.row(&[
                    "batches_completed".to_string(),
                    stats.batches_completed.to_string(),
                ]);
                table.row(&[
                    "batches_rejected".to_string(),
                    stats.batches_rejected.to_string(),
                ]);
                table.row(&["queue_depth".to_string(), stats.queue_depth.to_string()]);
                table.row(&["engine_queries".to_string(), engine.queries.to_string()]);
                table.row(&[
                    "planner_groups".to_string(),
                    engine.planner_groups.to_string(),
                ]);
                table.row(&[
                    "planner_units".to_string(),
                    engine.planner_units.to_string(),
                ]);
                table.row(&["cache_hits".to_string(), engine.cache_hits.to_string()]);
                table.row(&["cache_misses".to_string(), engine.cache_misses.to_string()]);
                table.row(&[
                    "cache_hit_rate".to_string(),
                    format!("{:.3}", engine.hit_rate()),
                ]);
                table.row(&["swaps".to_string(), engine.swaps.to_string()]);
                table.row(&[
                    "deltas_applied".to_string(),
                    engine.deltas_applied.to_string(),
                ]);
                table.row(&["rebuilds".to_string(), engine.rebuilds.to_string()]);
                println!("{}", table.render());
            }
            Err(e) => {
                eprintln!("ftspan_loadgen: stats request failed: {e}");
                protocol_errors += 1;
            }
        }
    }

    if args.shutdown {
        match Client::connect(addr.as_str()).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => eprintln!("ftspan_loadgen: server acknowledged shutdown"),
            Err(e) => {
                eprintln!("ftspan_loadgen: shutdown request failed: {e}");
                protocol_errors += 1;
            }
        }
    }

    let mut table = Table::new("loadgen", &["metric", "value"]);
    table.row(&["queries".to_string(), queries.to_string()]);
    table.row(&["throughput_qps".to_string(), format!("{qps:.0}")]);
    table.row(&["batches".to_string(), latency_us.count().to_string()]);
    table.row(&[
        "latency_p50_us".to_string(),
        latency_us.quantile(0.50).to_string(),
    ]);
    table.row(&[
        "latency_p99_us".to_string(),
        latency_us.quantile(0.99).to_string(),
    ]);
    table.row(&[
        "latency_p999_us".to_string(),
        latency_us.quantile(0.999).to_string(),
    ]);
    table.row(&[
        "latency_mean_us".to_string(),
        format!("{:.0}", latency_us.mean()),
    ]);
    table.row(&["query_errors".to_string(), query_errors.to_string()]);
    table.row(&["overloaded".to_string(), overloaded.to_string()]);
    table.row(&["protocol_errors".to_string(), protocol_errors.to_string()]);
    if let Some(u) = &updates {
        // The write side of the mixed workload, kept apart from query
        // latency: applies are rare and heavy (a rebuild can take
        // milliseconds), and folding them into the query histogram would
        // wreck its tail.
        table.row(&["applies".to_string(), u.applies.to_string()]);
        table.row(&["deltas_applied".to_string(), u.deltas_applied.to_string()]);
        table.row(&["apply_rejected".to_string(), u.apply_rejected.to_string()]);
        table.row(&["apply_rebuilds".to_string(), u.rebuilds.to_string()]);
        table.row(&[
            "apply_p50_us".to_string(),
            u.apply_us.quantile(0.50).to_string(),
        ]);
        table.row(&[
            "apply_p99_us".to_string(),
            u.apply_us.quantile(0.99).to_string(),
        ]);
        table.row(&[
            "apply_mean_us".to_string(),
            format!("{:.0}", u.apply_us.mean()),
        ]);
    }
    println!("{}", table.render());

    if let Some(out) = &args.out {
        // A BENCH.json-compatible single-scenario report: the reader
        // ignores keys it does not know, so downstream tooling for
        // bench_runner output reads loadgen reports unchanged.
        let config = ScenarioConfig {
            profile: Profile::Ci,
            seed: args.seed,
            threads: Some(args.connections),
            repeats: 1,
        };
        let report = BenchReport::new(
            &config,
            vec![ScenarioResult {
                name: "loadgen-net".to_string(),
                wall_ms: elapsed * 1e3,
                input_nodes: 0,
                input_edges: 0,
                spanner_edges: 0,
                edges_per_sec: None,
                queries_per_sec: Some(qps),
                peak_rss_kb: None,
                digest: format!(
                    "{:016x}",
                    latency_us.quantile(0.50)
                        ^ latency_us.quantile(0.99).rotate_left(21)
                        ^ queries.rotate_left(42)
                ),
            }],
        );
        if let Some(dir) = out.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("output directory is creatable");
            }
        }
        std::fs::write(out, report.to_json()).expect("report path is writable");
        println!("wrote {}", out.display());
    }

    if protocol_errors > 0 || failed.load(Ordering::Relaxed) > 0 {
        eprintln!("ftspan_loadgen: FAILED ({protocol_errors} protocol errors)");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_qps {
        if qps < min {
            eprintln!(
                "ftspan_loadgen: FAILED (throughput {qps:.0} q/s below the {min:.0} q/s floor)"
            );
            return ExitCode::FAILURE;
        }
        println!("throughput gate OK: {qps:.0} q/s >= {min:.0} q/s");
    }
    ExitCode::SUCCESS
}
