//! `bench_runner` — runs the seeded perf-scenario suite and writes
//! `BENCH.json`; the CI `perf-smoke` job uses `--check` as a regression gate.
//!
//! ```text
//! bench_runner [--profile ci|full] [--seed N] [--threads N] [--out PATH]
//!              [--check BASELINE] [--tolerance F] [--list]
//! ```
//!
//! * `--profile` — scenario sizes (`ci` is small and seconds-fast; default).
//! * `--seed` — base seed (default 2011); every scenario derives its own.
//! * `--threads` — worker threads (default: one per CPU). Digests are
//!   identical at any value.
//! * `--out` — where to write the JSON report (default `BENCH.json`).
//! * `--check` — compare against a baseline `BENCH.json`; exit 1 if any
//!   scenario's wall-clock regresses by more than the tolerance.
//! * `--tolerance` — allowed slowdown fraction for `--check` (default 0.25).
//! * `--list` — print the scenario registry and exit.
//!
//! Re-baseline with:
//!
//! ```text
//! cargo run --release -p ftspan-bench --bin bench_runner -- --profile ci --out bench/baseline.json
//! ```

use ftspan_bench::scenarios::{self, BenchReport, Profile, ScenarioConfig};
use ftspan_bench::Table;
use std::process::ExitCode;

struct Args {
    config: ScenarioConfig,
    out: std::path::PathBuf,
    check: Option<std::path::PathBuf>,
    tolerance: f64,
    list: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        config: ScenarioConfig::new(Profile::Ci),
        out: std::path::PathBuf::from("BENCH.json"),
        check: None,
        tolerance: 0.25,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--profile" => {
                let v = value_of("--profile");
                args.config.profile = Profile::parse(&v)
                    .unwrap_or_else(|| panic!("unknown profile `{v}` (expected ci|full)"));
            }
            "--seed" => {
                args.config.seed = value_of("--seed").parse().expect("--seed expects a u64");
            }
            "--threads" => {
                args.config.threads = Some(
                    value_of("--threads")
                        .parse()
                        .expect("--threads expects a positive integer"),
                );
            }
            "--out" => args.out = value_of("--out").into(),
            "--check" => args.check = Some(value_of("--check").into()),
            "--tolerance" => {
                args.tolerance = value_of("--tolerance")
                    .parse()
                    .expect("--tolerance expects a fraction like 0.25");
            }
            "--list" => args.list = true,
            other => panic!("unknown argument `{other}` (see the bench_runner docs)"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.list {
        let mut table = Table::new("scenarios", &["name", "description"]);
        for s in scenarios::all() {
            table.row(&[s.name, s.description]);
        }
        println!("{}", table.render());
        return ExitCode::SUCCESS;
    }

    println!(
        "running {} scenarios (profile {}, seed {}, threads {})",
        scenarios::all().len(),
        args.config.profile,
        args.config.seed,
        args.config
            .threads
            .map(|t| t.to_string())
            .unwrap_or_else(|| "auto".to_string()),
    );
    let results = scenarios::run_all(&args.config);

    let mut table = Table::new(
        "bench",
        &[
            "scenario",
            "wall_ms",
            "edges/s",
            "queries/s",
            "size",
            "rss_mb",
            "digest",
        ],
    );
    for r in &results {
        table.row(&[
            r.name.clone(),
            format!("{:.2}", r.wall_ms),
            r.edges_per_sec
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".to_string()),
            r.queries_per_sec
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".to_string()),
            r.spanner_edges.to_string(),
            r.peak_rss_kb
                .map(|v| format!("{:.0}", v as f64 / 1024.0))
                .unwrap_or_else(|| "-".to_string()),
            r.digest.clone(),
        ]);
    }
    println!("{}", table.render());

    let report = BenchReport::new(&args.config, results.clone());
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("output directory is creatable");
        }
    }
    std::fs::write(&args.out, report.to_json()).expect("BENCH.json is writable");
    println!("wrote {}", args.out.display());

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", baseline_path.display()));
        let baseline = BenchReport::parse_json(&text)
            .unwrap_or_else(|| panic!("{} is not a BENCH.json document", baseline_path.display()));
        let regressions = scenarios::compare(&baseline, &results, args.tolerance);
        if regressions.is_empty() {
            println!(
                "perf gate OK: no scenario regressed more than {:.0}% vs {}",
                args.tolerance * 100.0,
                baseline_path.display()
            );
        } else {
            eprintln!("perf gate FAILED ({} regressions):", regressions.len());
            for r in &regressions {
                eprintln!("  {}", r.message);
            }
            eprintln!(
                "re-baseline (after verifying the slowdown is intended) with:\n  \
                 cargo run --release -p ftspan-bench --bin bench_runner -- --profile {} --out {}",
                args.config.profile,
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
