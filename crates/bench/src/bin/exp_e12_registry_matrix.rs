//! Experiment E12 — the whole registry on common instances.
//!
//! The point of the unified `FtSpannerAlgorithm` API: one loop runs *every*
//! construction — centralized, distributed, baselines — on a shared
//! undirected and a shared directed instance, reporting size/cost, wall-clock
//! time and the construction-specific diagnostics from the same
//! `SpannerReport` shape. This is the harness future backends plug into by
//! simply registering themselves.

use fault_tolerant_spanners::prelude::*;
use ftspan_bench::{fmt, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = ftspan_bench::seed_from_args(12);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::connected_gnp(40, 0.2, generate::WeightKind::Unit, &mut rng);
    let dg = generate::directed_gnp(12, 0.4, generate::WeightKind::Unit, &mut rng);
    println!(
        "E12: undirected n = {} (m = {}), directed n = {} (arcs = {}), r = 1\n",
        g.node_count(),
        g.edge_count(),
        dg.node_count(),
        dg.arc_count()
    );

    let mut table = Table::new(
        "e12_registry_matrix",
        &[
            "algorithm",
            "reference",
            "family",
            "fault_model",
            "stretch",
            "size",
            "cost",
            "iters",
            "rounds",
            "lp_bound",
            "millis",
        ],
    );

    let base_request = SpannerRequest::new(1).with_scale(0.5).with_repetitions(4);

    for algorithm in registry().iter() {
        // The CLPR09 baseline is exhaustive by default; cap its fault-set
        // count the way a production deployment would, via the request. The
        // knob stays off for everything else (on `adaptive` it would also
        // downgrade the stopping rule from exhaustive to sampled).
        let request = if algorithm.name() == "clpr09" {
            base_request.with_samples(40)
        } else {
            base_request
        };
        let input = match algorithm.graph_family() {
            GraphFamily::Undirected => GraphInput::from(&g),
            GraphFamily::Directed => GraphInput::from(&dg),
        };
        let report = match algorithm.build(input, &request, &mut rng) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("warning: `{}` skipped: {e}", algorithm.name());
                continue;
            }
        };
        table.row(&[
            report.algorithm.clone(),
            algorithm.reference().to_string(),
            algorithm.graph_family().to_string(),
            report.fault_model.to_string(),
            fmt(report.stretch, 0),
            report.size().to_string(),
            fmt(report.cost, 1),
            report.iterations.to_string(),
            report
                .rounds
                .map_or_else(|| "-".to_string(), |r| r.to_string()),
            report
                .lp_objective
                .map_or_else(|| "-".to_string(), |v| fmt(v, 2)),
            fmt(report.elapsed.as_secs_f64() * 1e3, 1),
        ]);
    }
    table.print_and_save();
    println!(
        "Every row came out of the same FtSpannerAlgorithm::build call — the adaptive row stops\n\
         early, the distributed rows carry LOCAL round counts, the LP rows carry lower bounds."
    );
}
