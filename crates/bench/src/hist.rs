//! A dependency-free HDR-style latency histogram.
//!
//! [`Histogram`] records non-negative integer values (the load generator
//! records microseconds) into buckets whose width grows geometrically:
//! values below 128 are recorded exactly, and every power-of-two octave
//! above that is split into 64 sub-buckets, bounding the relative error of
//! any reported quantile by ~1.6% — the classic HDR histogram trade
//! (constant memory, O(1) record, full `u64` range) without the dependency.
//!
//! # Example
//!
//! ```
//! use ftspan_bench::hist::Histogram;
//!
//! let mut h = Histogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 1000);
//! assert_eq!(h.min(), 1);
//! assert_eq!(h.max(), 1000);
//! let p50 = h.quantile(0.50);
//! assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.02);
//! ```

/// log2 of the number of sub-buckets per octave.
const SUB_BUCKET_BITS: u32 = 6;
/// Sub-buckets per octave; also the bound `1/SUB_BUCKETS` on relative error.
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Total bucket count for the full `u64` range: `2 * SUB_BUCKETS` exact
/// buckets, then 64 − 7 octaves of `SUB_BUCKETS` each.
const BUCKETS: usize = (2 * SUB_BUCKETS + (63 - SUB_BUCKET_BITS as u64) * SUB_BUCKETS) as usize;

/// A fixed-memory bucketed histogram over `u64` values with ~1.6% relative
/// error above 127 and exact counts below.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB_BUCKETS {
        // Values 0..128 get exact buckets.
        v as usize
    } else {
        // 2^exp <= v < 2^(exp+1); the top SUB_BUCKET_BITS bits below the
        // leading bit select the sub-bucket within the octave.
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BUCKET_BITS)) - SUB_BUCKETS;
        (2 * SUB_BUCKETS + (exp as u64 - SUB_BUCKET_BITS as u64 - 1) * SUB_BUCKETS + sub) as usize
    }
}

/// Lowest value mapping to `index` (the inverse of [`bucket_index`]).
fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB_BUCKETS {
        index
    } else {
        let octave = (index - 2 * SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (index - 2 * SUB_BUCKETS) % SUB_BUCKETS;
        let exp = octave + SUB_BUCKET_BITS as u64 + 1;
        (SUB_BUCKETS + sub) << (exp - SUB_BUCKET_BITS as u64)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value. O(1), never allocates, never fails.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact — the sum is kept separately).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the smallest bucket boundary
    /// such that at least `ceil(q * count)` recorded values fall at or below
    /// it. Within ~1.6% of the true order statistic; exact below 128.
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Report the top of the bucket, clamped to the observed max
                // so p100 equals max() exactly.
                let next_low = if i + 1 < BUCKETS {
                    bucket_low(i + 1) - 1
                } else {
                    u64::MAX
                };
                return next_low.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_below_128() {
        for v in 0..128u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        let mut last = 0usize;
        for shift in 0..57 {
            for v in [127u64 << shift, (128u64 << shift).saturating_sub(1)] {
                let idx = bucket_index(v);
                assert!(idx >= last, "index not monotone at {v}");
                assert!(idx < BUCKETS, "index {idx} out of range at {v}");
                last = idx;
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_low_inverts_bucket_index() {
        for index in 0..BUCKETS {
            let low = bucket_low(index);
            assert_eq!(
                bucket_index(low),
                index,
                "bucket_low({index}) = {low} maps back to {}",
                bucket_index(low)
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Every value's bucket spans at most ~1.6% of the value itself.
        for v in [
            200u64,
            1_000,
            12_345,
            100_000,
            7_777_777,
            1 << 33,
            u64::MAX / 3,
        ] {
            let idx = bucket_index(v);
            let low = bucket_low(idx);
            let high = if idx + 1 < BUCKETS {
                bucket_low(idx + 1) - 1
            } else {
                u64::MAX
            };
            assert!(low <= v && v <= high);
            let width = (high - low) as f64;
            assert!(
                width / v as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "bucket of {v} spans {width}"
            );
        }
    }

    #[test]
    fn quantiles_track_a_uniform_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_000.5).abs() < 1e-6);
        for (q, expected) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expected).abs() / expected;
            assert!(err < 0.02, "p{q}: got {got}, expected ~{expected}");
        }
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 5, 9, 100] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        let mut whole = Histogram::new();
        for v in 1..=1000u64 {
            whole.record(v);
        }
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }
}
