//! The fluent entry point: [`FtSpannerBuilder`].

use crate::registry::registry;
use ftspan_core::serve::FtSpanner;
use ftspan_core::{CoreError, GraphInput, Result, SpannerReport, SpannerRequest};
use ftspan_graph::{DiGraph, Graph};
use ftspan_spanners::BlackBoxKind;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fluent builder over the algorithm [`registry`]: pick a construction by
/// name, set the unified [`SpannerRequest`] knobs, and build on an undirected
/// or directed graph.
///
/// Randomized constructions draw from a deterministic generator seeded by
/// [`FtSpannerBuilder::seed`] (default `2011`, the paper's year), so repeated
/// builds with the same configuration reproduce; pass your own generator via
/// [`FtSpannerBuilder::build_with_rng`] to share randomness with surrounding
/// code.
///
/// # Example
///
/// ```
/// use fault_tolerant_spanners::prelude::*;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let network = generate::gnp(30, 0.3, generate::WeightKind::Unit, &mut rng);
/// // A 3-spanner that survives any single node failure (Theorem 2.1).
/// let report = FtSpannerBuilder::new("conversion")
///     .faults(1)
///     .stretch(3.0)
///     .build(&network)
///     .unwrap();
/// assert!(verify::is_fault_tolerant_k_spanner(
///     &network,
///     report.edge_set().unwrap(),
///     report.stretch,
///     report.faults,
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct FtSpannerBuilder {
    algorithm: String,
    request: SpannerRequest,
    seed: u64,
}

impl FtSpannerBuilder {
    /// A builder for the named algorithm (a key of [`registry`]) with every
    /// knob at its default. The name is validated at build time so builders
    /// can be configured before the registry is consulted.
    pub fn new(algorithm: &str) -> Self {
        FtSpannerBuilder {
            algorithm: algorithm.to_string(),
            request: SpannerRequest::default(),
            seed: 2011,
        }
    }

    /// Switches to a different algorithm, keeping the configured knobs.
    pub fn algorithm(mut self, name: &str) -> Self {
        self.algorithm = name.to_string();
        self
    }

    /// Replaces the whole request (for callers that assembled one elsewhere).
    pub fn request(mut self, request: SpannerRequest) -> Self {
        self.request = request;
        self
    }

    /// Number of faults `r` to tolerate.
    pub fn faults(mut self, faults: usize) -> Self {
        self.request.faults = faults;
        self
    }

    /// Target stretch `k` (conversion-family algorithms).
    ///
    /// # Panics
    ///
    /// Panics if `stretch < 1`.
    pub fn stretch(mut self, stretch: f64) -> Self {
        self.request = self.request.with_stretch(stretch);
        self
    }

    /// Protect against vertex failures (the default).
    pub fn vertex_faults(mut self) -> Self {
        self.request.fault_model = ftspan_core::FaultModel::Vertex;
        self
    }

    /// Protect against edge failures (conversion-family algorithms only).
    pub fn edge_faults(mut self) -> Self {
        self.request.fault_model = ftspan_core::FaultModel::Edge;
        self
    }

    /// The black-box spanner used by conversion-family algorithms.
    pub fn black_box(mut self, kind: BlackBoxKind) -> Self {
        self.request.black_box = kind;
        self
    }

    /// Overrides the iteration count `α`.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.request = self.request.with_iterations(iterations);
        self
    }

    /// Scales the default iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn scale(mut self, scale: f64) -> Self {
        self.request = self.request.with_scale(scale);
        self
    }

    /// Overrides the LP rounding inflation constant.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn alpha_constant(mut self, c: f64) -> Self {
        self.request = self.request.with_alpha_constant(c);
        self
    }

    /// Declares the input's maximum degree (checked by bounded-degree
    /// algorithms).
    pub fn degree_bound(mut self, delta: usize) -> Self {
        self.request = self.request.with_degree_bound(delta);
        self
    }

    /// Maximum cutting-plane rounds for LP-based algorithms.
    pub fn max_cut_rounds(mut self, rounds: usize) -> Self {
        self.request = self.request.with_max_cut_rounds(rounds);
        self
    }

    /// Repetition count `t` of the distributed 2-spanner.
    pub fn repetitions(mut self, t: usize) -> Self {
        self.request = self.request.with_repetitions(t);
        self
    }

    /// Batch size of the adaptive conversion.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn batch(mut self, batch: usize) -> Self {
        self.request = self.request.with_batch(batch);
        self
    }

    /// Sample count for sampled verification / fault-set enumeration.
    pub fn samples(mut self, samples: usize) -> Self {
        self.request = self.request.with_samples(samples);
        self
    }

    /// Disables the post-rounding repair step of LP-based algorithms.
    pub fn no_repair(mut self) -> Self {
        self.request = self.request.without_repair();
        self
    }

    /// Worker threads for the construction's parallel hot paths (per-fault-set
    /// iterations, verification sweeps, separation-oracle rounds). The default
    /// is one worker per available CPU; `threads(1)` runs sequentially.
    /// Results are byte-identical at any worker count, so this knob only
    /// affects wall-clock time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.request = self.request.with_threads(threads);
        self
    }

    /// Seed of the builder-owned deterministic generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The request as currently configured.
    pub fn current_request(&self) -> &SpannerRequest {
        &self.request
    }

    /// Builds on an undirected graph with the builder-owned generator.
    pub fn build(&self, graph: &Graph) -> Result<SpannerReport> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.build_with_rng(GraphInput::from(graph), &mut rng)
    }

    /// Builds on a directed graph with the builder-owned generator.
    pub fn build_directed(&self, graph: &DiGraph) -> Result<SpannerReport> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.build_with_rng(GraphInput::from(graph), &mut rng)
    }

    /// Builds on an undirected graph and promotes the report to a queryable
    /// [`FtSpanner`] artifact (CSR-packed, with the declared guarantee),
    /// ready for [`FtSpanner::under_faults`] sessions or registration in an
    /// [`Engine`](crate::Engine).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FtSpannerBuilder::build`], plus an error if the
    /// selected algorithm produces directed plans.
    ///
    /// # Example
    ///
    /// ```
    /// use fault_tolerant_spanners::prelude::*;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    /// let network = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut rng);
    /// let artifact = FtSpannerBuilder::new("conversion")
    ///     .faults(1)
    ///     .build_artifact(&network)
    ///     .unwrap();
    /// let session = artifact.under_faults(&[NodeId::new(5)]).unwrap();
    /// let cert = session.stretch_certificate(NodeId::new(0), NodeId::new(9)).unwrap();
    /// assert!(cert.holds());
    /// ```
    pub fn build_artifact(&self, graph: &Graph) -> Result<FtSpanner> {
        let report = self.build(graph)?;
        FtSpanner::from_report(graph, &report)
    }

    /// Like [`FtSpannerBuilder::build_artifact`] with a caller-supplied
    /// generator.
    pub fn build_artifact_with_rng(
        &self,
        graph: &Graph,
        rng: &mut dyn RngCore,
    ) -> Result<FtSpanner> {
        let report = self.build_with_rng(GraphInput::from(graph), rng)?;
        FtSpanner::from_report(graph, &report)
    }

    /// Builds on either graph family with a caller-supplied generator.
    pub fn build_with_rng(
        &self,
        input: GraphInput<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        let registry = registry();
        let algorithm =
            registry
                .get(&self.algorithm)
                .ok_or_else(|| CoreError::InvalidParameter {
                    message: format!(
                        "unknown algorithm `{}`; registered: {}",
                        self.algorithm,
                        registry.names().join(", ")
                    ),
                })?;
        algorithm.build(input, &self.request, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};

    #[test]
    fn builder_runs_centralized_and_distributed_algorithms() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generate::gnp(16, 0.5, generate::WeightKind::Unit, &mut rng);
        let dg = generate::directed_gnp(8, 0.5, generate::WeightKind::Unit, &mut rng);

        let conversion = FtSpannerBuilder::new("conversion")
            .faults(1)
            .build(&g)
            .unwrap();
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            conversion.edge_set().unwrap(),
            conversion.stretch,
            1
        ));

        let lp = FtSpannerBuilder::new("two-spanner-lp")
            .faults(1)
            .build_directed(&dg)
            .unwrap();
        assert!(verify::is_ft_two_spanner(&dg, lp.arc_set().unwrap(), 1));

        let distributed = FtSpannerBuilder::new("distributed-two-spanner")
            .faults(1)
            .repetitions(3)
            .build_directed(&dg)
            .unwrap();
        assert!(verify::is_ft_two_spanner(
            &dg,
            distributed.arc_set().unwrap(),
            1
        ));
        assert!(distributed.rounds.unwrap() > 0);
    }

    #[test]
    fn unknown_algorithm_lists_the_registry() {
        let g = Graph::new(4);
        let err = FtSpannerBuilder::new("nope").build(&g).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("unknown algorithm `nope`"));
        assert!(message.contains("conversion"));
        assert!(message.contains("distributed-two-spanner"));
    }

    #[test]
    fn same_seed_reproduces_same_spanner() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generate::gnp(14, 0.5, generate::WeightKind::Unit, &mut rng);
        let builder = FtSpannerBuilder::new("corollary-2.2").faults(1).seed(77);
        let a = builder.build(&g).unwrap();
        let b = builder.build(&g).unwrap();
        assert_eq!(a.edges, b.edges);
        let c = builder.clone().seed(78).build(&g).unwrap();
        // Different seed almost surely differs on a non-trivial instance.
        assert!(a.edges != c.edges || a.size() == g.edge_count());
    }

    #[test]
    fn edge_fault_knob_reaches_the_conversion() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generate::gnp(14, 0.5, generate::WeightKind::Unit, &mut rng);
        let report = FtSpannerBuilder::new("conversion")
            .faults(1)
            .edge_faults()
            .build(&g)
            .unwrap();
        assert_eq!(report.fault_model, ftspan_core::FaultModel::Edge);
        assert!(verify::is_edge_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            report.stretch,
            1
        ));
    }
}
