//! The fluent entry point: [`FtSpannerBuilder`].

use crate::registry::registry;
use ftspan_core::serve::FtSpanner;
use ftspan_core::{
    BuildRecipe, CoreError, GraphInput, GraphSource, ResolvedSource, Result, SpannerReport,
    SpannerRequest,
};
use ftspan_graph::{DiGraph, Graph};
use ftspan_spanners::BlackBoxKind;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fluent builder over the algorithm [`registry`]: pick a construction by
/// name, set the unified [`SpannerRequest`] knobs, and build on an undirected
/// or directed graph.
///
/// Randomized constructions draw from a deterministic generator seeded by
/// [`FtSpannerBuilder::seed`] (default `2011`, the paper's year), so repeated
/// builds with the same configuration reproduce; pass your own generator via
/// [`FtSpannerBuilder::build_with_rng`] to share randomness with surrounding
/// code.
///
/// # Example
///
/// ```
/// use fault_tolerant_spanners::prelude::*;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let network = generate::gnp(30, 0.3, generate::WeightKind::Unit, &mut rng);
/// // A 3-spanner that survives any single node failure (Theorem 2.1).
/// let report = FtSpannerBuilder::new("conversion")
///     .faults(1)
///     .stretch(3.0)
///     .build(&network)
///     .unwrap();
/// assert!(verify::is_fault_tolerant_k_spanner(
///     &network,
///     report.edge_set().unwrap(),
///     report.stretch,
///     report.faults,
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct FtSpannerBuilder {
    algorithm: String,
    request: SpannerRequest,
    seed: u64,
}

impl FtSpannerBuilder {
    /// A builder for the named algorithm (a key of [`registry`]) with every
    /// knob at its default. The name is validated at build time so builders
    /// can be configured before the registry is consulted.
    pub fn new(algorithm: &str) -> Self {
        FtSpannerBuilder {
            algorithm: algorithm.to_string(),
            request: SpannerRequest::default(),
            seed: 2011,
        }
    }

    /// Switches to a different algorithm, keeping the configured knobs.
    pub fn algorithm(mut self, name: &str) -> Self {
        self.algorithm = name.to_string();
        self
    }

    /// Replaces the whole request (for callers that assembled one elsewhere).
    pub fn request(mut self, request: SpannerRequest) -> Self {
        self.request = request;
        self
    }

    /// Number of faults `r` to tolerate.
    pub fn faults(mut self, faults: usize) -> Self {
        self.request.faults = faults;
        self
    }

    /// Target stretch `k` (conversion-family algorithms).
    ///
    /// # Panics
    ///
    /// Panics if `stretch < 1`.
    pub fn stretch(mut self, stretch: f64) -> Self {
        self.request = self.request.with_stretch(stretch);
        self
    }

    /// Protect against vertex failures (the default).
    pub fn vertex_faults(mut self) -> Self {
        self.request.fault_model = ftspan_core::FaultModel::Vertex;
        self
    }

    /// Protect against edge failures (conversion-family algorithms only).
    pub fn edge_faults(mut self) -> Self {
        self.request.fault_model = ftspan_core::FaultModel::Edge;
        self
    }

    /// The black-box spanner used by conversion-family algorithms.
    pub fn black_box(mut self, kind: BlackBoxKind) -> Self {
        self.request.black_box = kind;
        self
    }

    /// Overrides the iteration count `α`.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.request = self.request.with_iterations(iterations);
        self
    }

    /// Scales the default iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn scale(mut self, scale: f64) -> Self {
        self.request = self.request.with_scale(scale);
        self
    }

    /// Overrides the LP rounding inflation constant.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn alpha_constant(mut self, c: f64) -> Self {
        self.request = self.request.with_alpha_constant(c);
        self
    }

    /// Declares the input's maximum degree (checked by bounded-degree
    /// algorithms).
    pub fn degree_bound(mut self, delta: usize) -> Self {
        self.request = self.request.with_degree_bound(delta);
        self
    }

    /// Maximum cutting-plane rounds for LP-based algorithms.
    pub fn max_cut_rounds(mut self, rounds: usize) -> Self {
        self.request = self.request.with_max_cut_rounds(rounds);
        self
    }

    /// Repetition count `t` of the distributed 2-spanner.
    pub fn repetitions(mut self, t: usize) -> Self {
        self.request = self.request.with_repetitions(t);
        self
    }

    /// Batch size of the adaptive conversion.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn batch(mut self, batch: usize) -> Self {
        self.request = self.request.with_batch(batch);
        self
    }

    /// Sample count for sampled verification / fault-set enumeration.
    pub fn samples(mut self, samples: usize) -> Self {
        self.request = self.request.with_samples(samples);
        self
    }

    /// Disables the post-rounding repair step of LP-based algorithms.
    pub fn no_repair(mut self) -> Self {
        self.request = self.request.without_repair();
        self
    }

    /// Worker threads for the construction's parallel hot paths (per-fault-set
    /// iterations, verification sweeps, separation-oracle rounds). The default
    /// is one worker per available CPU; `threads(1)` runs sequentially.
    /// Results are byte-identical at any worker count, so this knob only
    /// affects wall-clock time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.request = self.request.with_threads(threads);
        self
    }

    /// Seed of the builder-owned deterministic generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The request as currently configured.
    pub fn current_request(&self) -> &SpannerRequest {
        &self.request
    }

    /// Builds on an undirected graph with the builder-owned generator.
    pub fn build(&self, graph: &Graph) -> Result<SpannerReport> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.build_with_rng(GraphInput::from(graph), &mut rng)
    }

    /// Builds on any owned [`GraphSource`] — an owned [`Graph`] or
    /// [`DiGraph`], a pre-packed full CSR, or a seeded
    /// [`GeneratorSpec`](ftspan_graph::stream::GeneratorSpec) — resolving
    /// the source at the boundary (generators are evaluated here, streaming
    /// straight into CSR form; nothing is generated before this call).
    ///
    /// This is the scale-out entry point: at `n = 10^5..10^6` a generator
    /// spec skips the per-edge sorted-insertion build entirely, and
    /// [`FtSpannerBuilder::artifact_on_graph`] additionally reuses the
    /// boundary CSR for serving instead of re-packing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FtSpannerBuilder::build`], plus resolution
    /// errors (partial CSR views, inconsistent generator parameters).
    ///
    /// # Example
    ///
    /// ```
    /// use fault_tolerant_spanners::prelude::*;
    /// use fault_tolerant_spanners::graph::stream::GeneratorSpec;
    ///
    /// let spec = GeneratorSpec::Gnm {
    ///     nodes: 200,
    ///     edges: 900,
    ///     weights: generate::WeightKind::Unit,
    ///     seed: 11,
    /// };
    /// let report = FtSpannerBuilder::new("conversion")
    ///     .faults(1)
    ///     .on_graph(spec)
    ///     .unwrap();
    /// assert!(report.size() <= 900);
    /// ```
    pub fn on_graph(&self, source: impl Into<GraphSource>) -> Result<SpannerReport> {
        let resolved = source.into().resolve()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.build_with_rng(resolved.as_input(), &mut rng)
    }

    /// Like [`FtSpannerBuilder::on_graph`], but promotes the report to a
    /// queryable [`FtSpanner`] artifact. The CSR packed when the source was
    /// resolved is adopted by the artifact — the source graph is packed
    /// exactly once end to end.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FtSpannerBuilder::on_graph`], plus an error if
    /// the selected algorithm produces directed plans (they cannot serve
    /// distance queries).
    pub fn artifact_on_graph(&self, source: impl Into<GraphSource>) -> Result<FtSpanner> {
        let resolved = source.into().resolve()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut report = self.build_with_rng(resolved.as_input(), &mut rng)?;
        report.provenance = self.recipe().tagged_provenance(&report.provenance);
        match resolved {
            ResolvedSource::Undirected { graph, csr } => {
                FtSpanner::from_report_with_csr(&graph, csr, &report)
            }
            ResolvedSource::Directed(_) => Err(CoreError::InvalidParameter {
                message: format!(
                    "algorithm `{}` consumed a directed input; only undirected spanners \
                     can serve distance queries",
                    report.algorithm
                ),
            }),
        }
    }

    /// Builds on a directed graph with the builder-owned generator.
    pub fn build_directed(&self, graph: &DiGraph) -> Result<SpannerReport> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.build_with_rng(GraphInput::from(graph), &mut rng)
    }

    /// Builds on an undirected graph and promotes the report to a queryable
    /// [`FtSpanner`] artifact (CSR-packed, with the declared guarantee),
    /// ready for [`FtSpanner::under_faults`] sessions or registration in an
    /// [`Engine`](crate::Engine).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FtSpannerBuilder::build`], plus an error if the
    /// selected algorithm produces directed plans.
    ///
    /// # Example
    ///
    /// ```
    /// use fault_tolerant_spanners::prelude::*;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    /// let network = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut rng);
    /// let artifact = FtSpannerBuilder::new("conversion")
    ///     .faults(1)
    ///     .build_artifact(&network)
    ///     .unwrap();
    /// let session = artifact.under_faults(&[NodeId::new(5)]).unwrap();
    /// let cert = session.stretch_certificate(NodeId::new(0), NodeId::new(9)).unwrap();
    /// assert!(cert.holds());
    /// ```
    pub fn build_artifact(&self, graph: &Graph) -> Result<FtSpanner> {
        let mut report = self.build(graph)?;
        report.provenance = self.recipe().tagged_provenance(&report.provenance);
        FtSpanner::from_report(graph, &report)
    }

    /// The [`BuildRecipe`] this builder's seeded artifact constructors run:
    /// algorithm, knobs, and root seed. [`FtSpannerBuilder::build_artifact`]
    /// and [`FtSpannerBuilder::artifact_on_graph`] append its
    /// [tag](BuildRecipe::provenance_tag) to the artifact provenance, which
    /// is what lets `ftspan_serve --dynamic` rebuild a stored artifact
    /// bit-identically instead of guessing defaults.
    pub fn recipe(&self) -> BuildRecipe {
        BuildRecipe::new(&self.algorithm, self.request, self.seed)
    }

    /// Like [`FtSpannerBuilder::build_artifact`] with a caller-supplied
    /// generator. The artifact provenance carries **no** recipe tag: with
    /// external randomness there is no seed a recipe could reproduce the
    /// build from.
    pub fn build_artifact_with_rng(
        &self,
        graph: &Graph,
        rng: &mut dyn RngCore,
    ) -> Result<FtSpanner> {
        let report = self.build_with_rng(GraphInput::from(graph), rng)?;
        FtSpanner::from_report(graph, &report)
    }

    /// Builds on either graph family with a caller-supplied generator.
    pub fn build_with_rng(
        &self,
        input: GraphInput<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        let registry = registry();
        let algorithm =
            registry
                .get(&self.algorithm)
                .ok_or_else(|| CoreError::InvalidParameter {
                    message: format!(
                        "unknown algorithm `{}`; registered: {}",
                        self.algorithm,
                        registry.names().join(", ")
                    ),
                })?;
        algorithm.build(input, &self.request, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};

    #[test]
    fn builder_runs_centralized_and_distributed_algorithms() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generate::gnp(16, 0.5, generate::WeightKind::Unit, &mut rng);
        let dg = generate::directed_gnp(8, 0.5, generate::WeightKind::Unit, &mut rng);

        let conversion = FtSpannerBuilder::new("conversion")
            .faults(1)
            .build(&g)
            .unwrap();
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            conversion.edge_set().unwrap(),
            conversion.stretch,
            1
        ));

        let lp = FtSpannerBuilder::new("two-spanner-lp")
            .faults(1)
            .build_directed(&dg)
            .unwrap();
        assert!(verify::is_ft_two_spanner(&dg, lp.arc_set().unwrap(), 1));

        let distributed = FtSpannerBuilder::new("distributed-two-spanner")
            .faults(1)
            .repetitions(3)
            .build_directed(&dg)
            .unwrap();
        assert!(verify::is_ft_two_spanner(
            &dg,
            distributed.arc_set().unwrap(),
            1
        ));
        assert!(distributed.rounds.unwrap() > 0);
    }

    #[test]
    fn unknown_algorithm_lists_the_registry() {
        let g = Graph::new(4);
        let err = FtSpannerBuilder::new("nope").build(&g).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("unknown algorithm `nope`"));
        assert!(message.contains("conversion"));
        assert!(message.contains("distributed-two-spanner"));
    }

    #[test]
    fn same_seed_reproduces_same_spanner() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generate::gnp(14, 0.5, generate::WeightKind::Unit, &mut rng);
        let builder = FtSpannerBuilder::new("corollary-2.2").faults(1).seed(77);
        let a = builder.build(&g).unwrap();
        let b = builder.build(&g).unwrap();
        assert_eq!(a.edges, b.edges);
        let c = builder.clone().seed(78).build(&g).unwrap();
        // Different seed almost surely differs on a non-trivial instance.
        assert!(a.edges != c.edges || a.size() == g.edge_count());
    }

    #[test]
    fn on_graph_accepts_every_source_form() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generate::gnp(18, 0.4, generate::WeightKind::Unit, &mut rng);
        let builder = FtSpannerBuilder::new("conversion").faults(1);
        let by_ref = builder.build(&g).unwrap();
        // Owned graph, pre-packed CSR: identical reports (same seed, same
        // resolved graph).
        let by_owned = builder.on_graph(g.clone()).unwrap();
        assert_eq!(by_ref.edges, by_owned.edges);
        let csr = ftspan_graph::csr::CsrSubgraph::from_graph(&g);
        let by_csr = builder.on_graph(csr).unwrap();
        assert_eq!(by_ref.edges, by_csr.edges);
        // Generator spec: reproducible, and the artifact path adopts the
        // boundary CSR.
        let spec = ftspan_graph::stream::GeneratorSpec::Gnm {
            nodes: 60,
            edges: 240,
            weights: generate::WeightKind::Unit,
            seed: 4,
        };
        let a = builder.artifact_on_graph(spec).unwrap();
        let b = builder.artifact_on_graph(spec).unwrap();
        assert_eq!(a.spanner_edges(), b.spanner_edges());
        assert_eq!(a.node_count(), 60);
        assert_eq!(a.source_edge_count(), 240);
        // Directed owned input flows through the same entry point.
        let dg = generate::directed_gnp(8, 0.5, generate::WeightKind::Unit, &mut rng);
        let lp = FtSpannerBuilder::new("two-spanner-lp").faults(1);
        assert_eq!(
            lp.build_directed(&dg).unwrap().edges,
            lp.on_graph(dg.clone()).unwrap().edges
        );
        // ...but cannot become a distance-serving artifact.
        assert!(lp.artifact_on_graph(dg).is_err());
    }

    #[test]
    fn edge_fault_knob_reaches_the_conversion() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generate::gnp(14, 0.5, generate::WeightKind::Unit, &mut rng);
        let report = FtSpannerBuilder::new("conversion")
            .faults(1)
            .edge_faults()
            .build(&g)
            .unwrap();
        assert_eq!(report.fault_model, ftspan_core::FaultModel::Edge);
        assert!(verify::is_edge_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            report.stretch,
            1
        ));
    }
}
