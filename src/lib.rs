//! Fault-tolerant graph spanners — a Rust implementation of
//! *"Fault-Tolerant Spanners: Better and Simpler"* (Dinitz & Krauthgamer,
//! PODC 2011), together with every substrate it needs.
//!
//! Every construction in the workspace — the Theorem 2.1 black-box
//! conversion, the Theorem 3.3/3.4 minimum-cost 2-spanner approximations,
//! the edge-fault and adaptive variants, the CLPR09/DK10 baselines, and the
//! distributed (LOCAL-model) algorithms of Theorems 2.3 and 3.9 — implements
//! one trait, [`FtSpannerAlgorithm`](ftspan_core::FtSpannerAlgorithm), takes
//! one parameter type, [`SpannerRequest`](ftspan_core::SpannerRequest), and
//! returns one result type, [`SpannerReport`](ftspan_core::SpannerReport).
//! Algorithms are selected at runtime by name from the [`registry`], most
//! conveniently through the fluent [`FtSpannerBuilder`].
//!
//! Construction is half the story: reports can be promoted to queryable
//! [`FtSpanner`](ftspan_core::FtSpanner) artifacts whose fault-scoped
//! sessions answer `distance` / `path` / `stretch_certificate` queries; the
//! batched [`Engine`] serves named artifacts through a session-reusing query
//! planner (grouped fault scopes, per-source Dijkstra caching, worker
//! threads — see [`EngineConfig`]); artifacts persist as versioned
//! binary `.ftspan` files through the directory-backed [`ArtifactStore`] —
//! build once, query many. When the graph churns, a
//! [`DynamicArtifact`] registered through
//! [`Engine::register_dynamic`] absorbs edge deltas in place:
//! [`Engine::apply_deltas`] builds the next version off-lock (incremental
//! repair where the construction's locality allows, full rebuild otherwise)
//! and swaps it in atomically under live query load.
//!
//! # Quickstart
//!
//! ```
//! use fault_tolerant_spanners::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! // A random network of 30 nodes.
//! let network = generate::gnp(30, 0.3, generate::WeightKind::Unit, &mut rng);
//!
//! // A 3-spanner that survives any single node failure (Theorem 2.1).
//! let report = FtSpannerBuilder::new("conversion")
//!     .faults(1)
//!     .stretch(3.0)
//!     .build(&network)
//!     .unwrap();
//! assert!(verify::is_fault_tolerant_k_spanner(
//!     &network,
//!     report.edge_set().unwrap(),
//!     report.stretch,
//!     report.faults,
//! ));
//! println!("{}: {} edges in {:?}", report.provenance, report.size(), report.elapsed);
//! ```
//!
//! Or skip the bag-of-edges report entirely and query the spanner under a
//! concrete fault set through a session:
//!
//! ```
//! use fault_tolerant_spanners::prelude::*;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! # use rand::SeedableRng;
//! let network = generate::connected_gnp(30, 0.25, generate::WeightKind::Unit, &mut rng);
//! let artifact = FtSpannerBuilder::new("conversion")
//!     .faults(1)
//!     .build_artifact(&network)
//!     .unwrap();
//!
//! // Node 7 is down; the surviving spanner still answers with stretch <= 3.
//! let session = artifact.under_faults(&[NodeId::new(7)]).unwrap();
//! let cert = session.stretch_certificate(NodeId::new(0), NodeId::new(12)).unwrap();
//! assert!(cert.holds());
//! assert!(cert.spanner_distance <= 3.0 * cert.baseline_distance + 1e-9);
//!
//! // Two faults exceed the r = 1 budget: a typed, queryable rejection.
//! assert!(matches!(
//!     artifact.under_faults(&[NodeId::new(1), NodeId::new(2)]),
//!     Err(fault_tolerant_spanners::core::CoreError::TooManyFaults { given: 2, budget: 1 })
//! ));
//! ```
//!
//! Directed minimum-cost instances go through the same builder:
//!
//! ```
//! use fault_tolerant_spanners::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
//! let routers = generate::directed_gnp(12, 0.4, generate::WeightKind::Unit, &mut rng);
//! // Theorem 3.3: O(log n)-approximate min-cost 1-fault-tolerant 2-spanner.
//! let plan = FtSpannerBuilder::new("two-spanner-lp")
//!     .faults(1)
//!     .build_directed(&routers)
//!     .unwrap();
//! assert!(verify::is_ft_two_spanner(&routers, plan.arc_set().unwrap(), 1));
//! // The report carries the LP lower bound, so the realized ratio is free.
//! assert!(plan.ratio_vs_lp().unwrap() >= 1.0);
//! ```
//!
//! And the whole zoo can be enumerated for comparisons:
//!
//! ```
//! use fault_tolerant_spanners::registry;
//!
//! for algorithm in registry().iter() {
//!     println!("{:<24} {:<28} {}", algorithm.name(), algorithm.reference(), algorithm.summary());
//! }
//! ```
//!
//! # Theorem → registry name
//!
//! | registry name | paper result | input | output guarantee |
//! |---|---|---|---|
//! | `conversion` | Theorem 2.1 | undirected | `r`-fault-tolerant `k`-spanner |
//! | `corollary-2.2` | Corollary 2.2 | undirected | size `O(r^{2−2/(k+1)} n^{1+2/(k+1)} log n)` |
//! | `adaptive` | Theorem 2.1 (early stopping) | undirected | verified `r`-fault-tolerant `k`-spanner |
//! | `edge-fault` | Theorem 2.1 (edge extension) | undirected | `r`-**edge**-fault-tolerant `k`-spanner |
//! | `clpr09` | CLPR09 baseline | undirected | `r`-fault-tolerant `k`-spanner (exponential size in `r`) |
//! | `two-spanner-lp` | Theorem 3.3 | directed | `O(log n)`-approx min-cost FT 2-spanner |
//! | `two-spanner-greedy` | Lemma 3.1 heuristic | directed | valid FT 2-spanner, no ratio bound |
//! | `two-spanner-lll` | Theorem 3.4 | directed, unit costs | `O(log Δ)`-approximation |
//! | `dk10` | DK10 baseline | directed | `O(r log n)`-approximation |
//! | `distributed-conversion` | Theorem 2.3 / Cor. 2.4 | undirected | FT 3-spanner in `O(r³ log n)` rounds |
//! | `distributed-two-spanner` | Theorem 3.9 / Alg. 2 | directed | `O(log n)`-approx in `O(log² n)` rounds |
//!
//! # Crate layout
//!
//! This crate is a thin facade re-exporting the workspace's library crates so
//! downstream users (and the examples in `examples/`) have a single
//! dependency:
//!
//! * [`graph`] — graph substrate: [`graph::Graph`], [`graph::DiGraph`],
//!   shortest paths, generators, fault sets and verification oracles.
//! * [`spanners`] — classic (non-fault-tolerant) spanner constructions used
//!   as black boxes by the conversion theorem.
//! * [`lp`] — the simplex / cutting-plane toolkit behind the 2-spanner
//!   approximation.
//! * [`core`] — the paper's constructions, the unified
//!   [`FtSpannerAlgorithm`](ftspan_core::FtSpannerAlgorithm) API, and the
//!   query-side [`FtSpanner`](ftspan_core::FtSpanner) /
//!   [`FaultSession`](ftspan_core::FaultSession) artifacts.
//! * [`local`] — the LOCAL-model simulator and the distributed algorithms of
//!   Theorems 2.3 and 3.9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftspan_core as core;
pub use ftspan_graph as graph;
pub use ftspan_local as local;
pub use ftspan_lp as lp;
pub use ftspan_spanners as spanners;

mod builder;
mod engine;
mod registry;
mod shard;
mod store;

pub use builder::FtSpannerBuilder;
pub use engine::{
    ArtifactHandle, ArtifactSummary, Engine, EngineConfig, EngineStats, Query, QueryKind,
    QueryOutcome,
};
pub use ftspan_core::{
    ApplyAction, ApplyReport, BuildRecipe, DeltaLog, DynamicArtifact, EdgeDelta, RebuildPolicy,
    RebuildReason, SequencedDelta,
};
pub use registry::registry;
pub use shard::{CutEdge, ShardedArtifact, ShardedSession};
pub use store::{ArtifactStore, ARTIFACT_EXTENSION, DELTA_LOG_EXTENSION, SHARD_MANIFEST_EXTENSION};

/// The most commonly used items, re-exported flat for convenient glob
/// imports in examples and applications.
///
/// Constructions are reached through [`FtSpannerBuilder`] / [`registry`];
/// the graph substrate (generators, verification oracles, fault-set tooling)
/// and the classic black boxes are re-exported directly.
pub mod prelude {
    // The unified construction API.
    pub use crate::builder::FtSpannerBuilder;
    pub use crate::registry::registry;
    pub use ftspan_core::{
        FaultModel, FtSpannerAlgorithm, GraphFamily, GraphInput, GraphSource, Registry,
        ResolvedSource, SpannerEdges, SpannerReport, SpannerRequest,
    };
    pub use ftspan_graph::stream::GeneratorSpec;

    // The query side: artifacts, fault-scoped sessions, the serving engine
    // and the directory-backed artifact store.
    pub use crate::engine::{
        ArtifactHandle, ArtifactSummary, Engine, EngineConfig, EngineStats, Query, QueryKind,
        QueryOutcome,
    };
    pub use crate::shard::{CutEdge, ShardedArtifact, ShardedSession};
    pub use crate::store::ArtifactStore;
    pub use ftspan_core::{
        CacheStats, CachedSession, FaultSession, FtSpanner, FtSpannerView, StretchCertificate,
    };

    // The dynamic-graph subsystem: delta logs, build recipes, incremental
    // repair and the warm hand-off policy knobs.
    pub use ftspan_core::{
        ApplyAction, ApplyReport, BuildRecipe, DeltaLog, DynamicArtifact, EdgeDelta, RebuildPolicy,
        RebuildReason, SequencedDelta,
    };

    // Combinatorial lower bounds, reported alongside construction sizes.
    pub use ftspan_core::lower_bounds::{
        directed_cost_lower_bound, directed_size_lower_bound, edge_fault_size_lower_bound,
        vertex_fault_size_lower_bound,
    };

    // The graph substrate.
    pub use ftspan_graph::{
        components, faults, generate, io, par, partition, shortest_path, stats, stream, tree,
        verify, ArcSet, DiGraph, EdgeSet, Graph, NodeId,
    };

    // Distributed verification (LOCAL-model checkers).
    pub use ftspan_local::verify::{distributed_stretch_check, distributed_two_spanner_check};

    // The classic black boxes consumed by the conversion theorem.
    pub use ftspan_spanners::{
        BaswanaSenSpanner, BlackBoxKind, ClusterSpanner, GreedySpanner, SpannerAlgorithm,
        SpannerStats, ThorupZwickSpanner,
    };
}
