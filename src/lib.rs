//! Fault-tolerant graph spanners — a Rust implementation of
//! *"Fault-Tolerant Spanners: Better and Simpler"* (Dinitz & Krauthgamer,
//! PODC 2011), together with every substrate it needs.
//!
//! This crate is a thin facade re-exporting the workspace's library crates so
//! downstream users (and the examples in `examples/`) have a single
//! dependency:
//!
//! * [`graph`] — graph substrate: [`graph::Graph`], [`graph::DiGraph`],
//!   shortest paths, generators, fault sets and verification oracles.
//! * [`spanners`] — classic (non-fault-tolerant) spanner constructions used
//!   as black boxes by the conversion theorem.
//! * [`lp`] — the simplex / cutting-plane toolkit behind the 2-spanner
//!   approximation.
//! * [`core`] — the paper's constructions: the Theorem 2.1 conversion, the
//!   Theorem 3.3 `O(log n)`-approximation, the Theorem 3.4 bounded-degree
//!   variant, and the CLPR09 / DK10 baselines.
//! * [`local`] — the LOCAL-model simulator and the distributed algorithms of
//!   Theorems 2.3 and 3.9.
//!
//! # Quickstart
//!
//! ```
//! use fault_tolerant_spanners::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! // A random network of 30 nodes.
//! let network = generate::gnp(30, 0.3, generate::WeightKind::Unit, &mut rng);
//! // A 3-spanner that survives any single node failure.
//! let spanner = corollary_2_2(&network, 3.0, 1, &mut rng);
//! assert!(verify::is_fault_tolerant_k_spanner(&network, &spanner.edges, 3.0, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftspan_core as core;
pub use ftspan_graph as graph;
pub use ftspan_local as local;
pub use ftspan_lp as lp;
pub use ftspan_spanners as spanners;

/// The most commonly used items, re-exported flat for convenient glob
/// imports in examples and applications.
pub mod prelude {
    pub use ftspan_core::adaptive::{adaptive_fault_tolerant_spanner, AdaptiveConfig};
    pub use ftspan_core::baselines::{dk10_two_spanner, ClprStyleBaseline};
    pub use ftspan_core::conversion::{
        corollary_2_2, ConversionParams, ConversionResult, FaultTolerantConverter,
    };
    pub use ftspan_core::edge_faults::{edge_fault_tolerant_spanner, EdgeFaultParams};
    pub use ftspan_core::lower_bounds::{
        directed_cost_lower_bound, directed_size_lower_bound, vertex_fault_size_lower_bound,
    };
    pub use ftspan_core::two_spanner::{
        approximate_two_spanner, bounded_degree_two_spanner, greedy_ft_two_spanner, ApproxConfig,
        LllConfig,
    };
    pub use ftspan_graph::{
        components, faults, generate, io, shortest_path, stats, tree, verify, ArcSet, DiGraph,
        EdgeSet, Graph, NodeId,
    };
    pub use ftspan_local::spanner::{
        distributed_fault_tolerant_spanner, DistributedConversionConfig,
    };
    pub use ftspan_local::two_spanner::{distributed_two_spanner, DistributedTwoSpannerConfig};
    pub use ftspan_local::verify::{distributed_stretch_check, distributed_two_spanner_check};
    pub use ftspan_spanners::{
        BaswanaSenSpanner, ClusterSpanner, GreedySpanner, SpannerAlgorithm, ThorupZwickSpanner,
    };
}
