//! The serving [`Engine`]: named [`FtSpanner`] artifacts, batched queries,
//! worker threads.
//!
//! The build-once/query-many workflow: construct artifacts through
//! [`FtSpannerBuilder::build_artifact`](crate::FtSpannerBuilder::build_artifact)
//! (or load them with [`FtSpanner::from_reader`]), register them under names,
//! then execute whole batches of [`Query`] values. Queries are distributed
//! across worker threads; results come back **in input order**, so a batch is
//! deterministic regardless of worker count or scheduling.
//!
//! # Example
//!
//! ```
//! use fault_tolerant_spanners::prelude::*;
//! use fault_tolerant_spanners::{Engine, Query};
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! # use rand::SeedableRng;
//! let network = generate::connected_gnp(30, 0.2, generate::WeightKind::Unit, &mut rng);
//! let artifact = FtSpannerBuilder::new("conversion")
//!     .faults(1)
//!     .build_artifact(&network)
//!     .unwrap();
//!
//! let mut engine = Engine::new();
//! engine.register("backbone", artifact);
//! let queries = vec![
//!     Query::distance("backbone", vec![NodeId::new(3)], NodeId::new(0), NodeId::new(7)),
//!     Query::certificate("backbone", vec![], NodeId::new(1), NodeId::new(4)),
//! ];
//! let results = engine.run_batch(&queries);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use ftspan_core::serve::{FtSpanner, StretchCertificate};
use ftspan_core::{CoreError, FaultModel, Result};
use ftspan_graph::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a [`Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Shortest surviving spanner distance between two vertices.
    Distance,
    /// A shortest surviving spanner path between two vertices.
    Path,
    /// A full [`StretchCertificate`] for the pair.
    Certificate,
}

/// One unit of serving work: an artifact name, a fault scope, a vertex pair
/// and the kind of answer wanted.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Name of the registered artifact to query.
    pub artifact: String,
    /// The failed vertices this query is scoped to (vertex-fault artifacts).
    pub faults: Vec<NodeId>,
    /// The failed edges this query is scoped to (edge-fault artifacts).
    pub edge_faults: Vec<(NodeId, NodeId)>,
    /// First query vertex.
    pub u: NodeId,
    /// Second query vertex.
    pub v: NodeId,
    /// The kind of answer wanted.
    pub kind: QueryKind,
}

impl Query {
    /// A distance query under the given vertex faults.
    pub fn distance(artifact: &str, faults: Vec<NodeId>, u: NodeId, v: NodeId) -> Self {
        Query {
            artifact: artifact.to_string(),
            faults,
            edge_faults: Vec::new(),
            u,
            v,
            kind: QueryKind::Distance,
        }
    }

    /// A path query under the given vertex faults.
    pub fn path(artifact: &str, faults: Vec<NodeId>, u: NodeId, v: NodeId) -> Self {
        Query {
            artifact: artifact.to_string(),
            faults,
            edge_faults: Vec::new(),
            u,
            v,
            kind: QueryKind::Path,
        }
    }

    /// A stretch-certificate query under the given vertex faults.
    pub fn certificate(artifact: &str, faults: Vec<NodeId>, u: NodeId, v: NodeId) -> Self {
        Query {
            artifact: artifact.to_string(),
            faults,
            edge_faults: Vec::new(),
            u,
            v,
            kind: QueryKind::Certificate,
        }
    }

    /// Scopes this query to failed edges instead of failed vertices (for
    /// artifacts declaring [`FaultModel::Edge`]).
    pub fn with_edge_faults(mut self, edge_faults: Vec<(NodeId, NodeId)>) -> Self {
        self.edge_faults = edge_faults;
        self.faults = Vec::new();
        self
    }
}

/// The answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Answer to a [`QueryKind::Distance`] query.
    Distance(f64),
    /// Answer to a [`QueryKind::Path`] query (`None` when disconnected).
    Path(Option<Vec<NodeId>>),
    /// Answer to a [`QueryKind::Certificate`] query.
    Certificate(StretchCertificate),
}

impl QueryOutcome {
    /// The distance, if this is a distance outcome.
    pub fn as_distance(&self) -> Option<f64> {
        match self {
            QueryOutcome::Distance(d) => Some(*d),
            _ => None,
        }
    }

    /// The certificate, if this is a certificate outcome.
    pub fn as_certificate(&self) -> Option<&StretchCertificate> {
        match self {
            QueryOutcome::Certificate(c) => Some(c),
            _ => None,
        }
    }
}

/// A serving engine holding named, immutable [`FtSpanner`] artifacts and
/// executing query batches across worker threads.
///
/// Results are returned in input order and depend only on the artifacts and
/// the queries — never on the worker count — so repeated runs of the same
/// batch are byte-identical.
#[derive(Debug, Clone)]
pub struct Engine {
    artifacts: BTreeMap<String, Arc<FtSpanner>>,
    workers: usize,
}

impl Engine {
    /// An empty engine using one worker per available CPU (at least one).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Engine {
            artifacts: BTreeMap::new(),
            workers,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Registers (or replaces) an artifact under `name`.
    pub fn register(&mut self, name: &str, artifact: FtSpanner) -> &mut Self {
        self.artifacts.insert(name.to_string(), Arc::new(artifact));
        self
    }

    /// Looks up a registered artifact.
    pub fn artifact(&self, name: &str) -> Option<&FtSpanner> {
        self.artifacts.get(name).map(|a| a.as_ref())
    }

    /// The registered artifact names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.artifacts.keys().map(String::as_str).collect()
    }

    /// Number of registered artifacts.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Returns `true` if no artifact is registered.
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    fn answer(&self, query: &Query) -> Result<QueryOutcome> {
        let artifact =
            self.artifacts
                .get(&query.artifact)
                .ok_or_else(|| CoreError::UnknownArtifact {
                    name: query.artifact.clone(),
                })?;
        // A query carrying the wrong kind of faults for the artifact is a
        // typed error — silently ignoring the supplied fault set would return
        // confidently wrong (unmasked) answers.
        let session = if artifact.fault_model() == FaultModel::Edge {
            if !query.faults.is_empty() {
                return Err(CoreError::FaultModelMismatch {
                    declared: FaultModel::Edge,
                    requested: FaultModel::Vertex,
                });
            }
            artifact.under_edge_faults(&query.edge_faults)?
        } else {
            if !query.edge_faults.is_empty() {
                return Err(CoreError::FaultModelMismatch {
                    declared: FaultModel::Vertex,
                    requested: FaultModel::Edge,
                });
            }
            artifact.under_faults(&query.faults)?
        };
        Ok(match query.kind {
            QueryKind::Distance => QueryOutcome::Distance(session.distance(query.u, query.v)?),
            QueryKind::Path => QueryOutcome::Path(session.path(query.u, query.v)?),
            QueryKind::Certificate => {
                QueryOutcome::Certificate(session.stretch_certificate(query.u, query.v)?)
            }
        })
    }

    /// Executes a batch of queries, distributing them across the engine's
    /// worker threads, and returns one result per query **in input order**.
    ///
    /// Per-query failures (unknown artifact, oversized fault set, unknown
    /// vertex) are reported in the corresponding slot; they never abort the
    /// rest of the batch.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Result<QueryOutcome>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let workers = self.workers.min(queries.len());
        if workers == 1 {
            return queries.iter().map(|q| self.answer(q)).collect();
        }
        let chunk = queries.len().div_ceil(workers);
        let mut results: Vec<Option<Result<QueryOutcome>>> = vec![None; queries.len()];
        std::thread::scope(|scope| {
            let mut pending: Vec<_> = Vec::new();
            for (chunk_queries, chunk_results) in
                queries.chunks(chunk).zip(results.chunks_mut(chunk))
            {
                pending.push(scope.spawn(move || {
                    for (query, slot) in chunk_queries.iter().zip(chunk_results.iter_mut()) {
                        *slot = Some(self.answer(query));
                    }
                }));
            }
            for handle in pending {
                handle.join().expect("engine worker panicked");
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every query slot is filled by its worker"))
            .collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtSpannerBuilder;
    use ftspan_graph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn engine_with_artifact(seed: u64) -> (Engine, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(24, 0.25, generate::WeightKind::Unit, &mut rng);
        let artifact = FtSpannerBuilder::new("conversion")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        let n = g.node_count();
        let mut engine = Engine::new();
        engine.register("net", artifact);
        (engine, n)
    }

    #[test]
    fn batches_are_deterministic_across_worker_counts() {
        let (engine, n) = engine_with_artifact(1);
        let queries: Vec<Query> = (0..n)
            .flat_map(|u| {
                (0..n).map(move |v| {
                    Query::distance(
                        "net",
                        vec![NodeId::new((u + v) % n)],
                        NodeId::new(u),
                        NodeId::new(v),
                    )
                })
            })
            .collect();
        let reference = engine.clone().with_workers(1).run_batch(&queries);
        for workers in [2usize, 3, 8] {
            let got = engine.clone().with_workers(workers).run_batch(&queries);
            assert_eq!(reference, got, "worker count {workers} changed the batch");
        }
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        let (engine, _) = engine_with_artifact(2);
        let queries = vec![
            Query::distance("net", vec![], NodeId::new(0), NodeId::new(1)),
            Query::distance("missing", vec![], NodeId::new(0), NodeId::new(1)),
            Query::distance(
                "net",
                vec![NodeId::new(0), NodeId::new(1)], // budget is 1
                NodeId::new(2),
                NodeId::new(3),
            ),
            Query::path("net", vec![], NodeId::new(0), NodeId::new(5)),
        ];
        let results = engine.run_batch(&queries);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::UnknownArtifact { .. })));
        assert!(matches!(results[2], Err(CoreError::TooManyFaults { .. })));
        assert!(results[3].is_ok());
    }

    #[test]
    fn registry_of_artifacts_is_inspectable() {
        let (mut engine, _) = engine_with_artifact(3);
        assert_eq!(engine.names(), vec!["net"]);
        assert_eq!(engine.len(), 1);
        assert!(!engine.is_empty());
        assert!(engine.artifact("net").is_some());
        assert!(engine.artifact("nope").is_none());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generate::connected_gnp(10, 0.4, generate::WeightKind::Unit, &mut rng);
        let other = FtSpannerBuilder::new("corollary-2.2")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        engine.register("alt", other);
        assert_eq!(engine.names(), vec!["alt", "net"]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (engine, _) = engine_with_artifact(5);
        assert!(engine.run_batch(&[]).is_empty());
    }

    #[test]
    fn mismatched_fault_kind_is_rejected_not_ignored() {
        // Supplying vertex faults to an edge-fault artifact (or vice versa)
        // must be a typed error — never a silently unmasked answer.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generate::connected_gnp(16, 0.35, generate::WeightKind::Unit, &mut rng);
        let edge_model = FtSpannerBuilder::new("edge-fault")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        let (mut engine, _) = engine_with_artifact(7);
        engine.register("edges", edge_model);

        let vertex_faults_on_edge_artifact = Query::distance(
            "edges",
            vec![NodeId::new(3)],
            NodeId::new(0),
            NodeId::new(1),
        );
        let edge_faults_on_vertex_artifact =
            Query::distance("net", vec![], NodeId::new(0), NodeId::new(1))
                .with_edge_faults(vec![(NodeId::new(0), NodeId::new(1))]);
        let ok_edge_query = Query::distance("edges", vec![], NodeId::new(0), NodeId::new(1));
        let results = engine.run_batch(&[
            vertex_faults_on_edge_artifact,
            edge_faults_on_vertex_artifact,
            ok_edge_query,
        ]);
        assert!(matches!(
            results[0],
            Err(CoreError::FaultModelMismatch { .. })
        ));
        assert!(matches!(
            results[1],
            Err(CoreError::FaultModelMismatch { .. })
        ));
        assert!(results[2].is_ok());
    }
}
