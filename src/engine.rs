//! The serving [`Engine`]: named [`FtSpanner`] artifacts, batched queries,
//! a session-reusing query planner, worker threads.
//!
//! The build-once/query-many workflow: construct artifacts through
//! [`FtSpannerBuilder::build_artifact`](crate::FtSpannerBuilder::build_artifact)
//! (or load them with [`FtSpanner::from_reader`] / an
//! [`ArtifactStore`](crate::ArtifactStore)), register them under names, then
//! execute whole batches of [`Query`] values. Results come back **in input
//! order**, so a batch is deterministic regardless of worker count or
//! scheduling.
//!
//! # The query planner
//!
//! Serving batches are dominated by repeated fault scopes: thousands of
//! queries against the same artifact under the same fault set, often from a
//! handful of sources. [`Engine::run_batch`] therefore does not open a fresh
//! session per query. It **canonicalizes** each query's fault scope (sorted,
//! deduplicated vertex or edge faults), **groups** the batch by
//! `(artifact, fault scope)`, builds each group's [`FaultSession`] once, and
//! fans the groups out across the `ftspan_core::par` worker pool. Within a
//! group, queries run through a [`CachedSession`] whose bounded LRU reuses
//! one Dijkstra tree per query source ([`EngineConfig::source_cache_capacity`]).
//!
//! The plan is **observationally transparent**: the results — including
//! per-query errors — are identical to running every query in its own
//! session ([`Engine::run_batch_naive`]), at any worker count and any cache
//! capacity.
//!
//! # Dynamic artifacts and warm hand-off
//!
//! An artifact registered through [`Engine::register_dynamic`] carries its
//! build recipe and delta log (a [`DynamicArtifact`]) and can be evolved in
//! place with [`Engine::apply_deltas`]: version `v_{k+1}` is built **outside
//! the registry lock** — by incremental repair when the
//! [`RebuildPolicy`] allows, by a full rebuild otherwise — while `v_k` keeps
//! serving, then swapped in atomically. Every batch snapshots the registry
//! exactly once before planning, so all of a batch's queries are answered by
//! the same artifact version, and in-flight batches pin the version they
//! started with (`Arc`) until their last query completes: **no query ever
//! observes a half-swapped artifact**, and a swap never waits on queries.
//!
//! [`FaultSession`]: ftspan_core::FaultSession
//! [`CachedSession`]: ftspan_core::CachedSession
//!
//! # Example
//!
//! ```
//! use fault_tolerant_spanners::prelude::*;
//! use fault_tolerant_spanners::{Engine, Query};
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! # use rand::SeedableRng;
//! let network = generate::connected_gnp(30, 0.2, generate::WeightKind::Unit, &mut rng);
//! let artifact = FtSpannerBuilder::new("conversion")
//!     .faults(1)
//!     .build_artifact(&network)
//!     .unwrap();
//!
//! let mut engine = Engine::new();
//! engine.register("backbone", artifact);
//! let queries = vec![
//!     Query::distance("backbone", vec![NodeId::new(3)], NodeId::new(0), NodeId::new(7)),
//!     Query::certificate("backbone", vec![], NodeId::new(1), NodeId::new(4)),
//! ];
//! let results = engine.run_batch(&queries);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use crate::shard::{ShardedArtifact, ShardedSession};
use ftspan_core::serve::{CachedSession, FaultSession, FtSpanner, StretchCertificate};
use ftspan_core::{
    par, ApplyReport, CoreError, DynamicArtifact, EdgeDelta, FaultModel, RebuildPolicy, Result,
};
use ftspan_graph::NodeId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// What a [`Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Shortest surviving spanner distance between two vertices.
    Distance,
    /// A shortest surviving spanner path between two vertices.
    Path,
    /// A full [`StretchCertificate`] for the pair.
    Certificate,
}

/// One unit of serving work: an artifact name, a fault scope, a vertex pair
/// and the kind of answer wanted.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Name of the registered artifact to query.
    pub artifact: String,
    /// The failed vertices this query is scoped to (vertex-fault artifacts).
    pub faults: Vec<NodeId>,
    /// The failed edges this query is scoped to (edge-fault artifacts).
    pub edge_faults: Vec<(NodeId, NodeId)>,
    /// First query vertex.
    pub u: NodeId,
    /// Second query vertex.
    pub v: NodeId,
    /// The kind of answer wanted.
    pub kind: QueryKind,
}

impl Query {
    /// A distance query under the given vertex faults.
    pub fn distance(artifact: &str, faults: Vec<NodeId>, u: NodeId, v: NodeId) -> Self {
        Query {
            artifact: artifact.to_string(),
            faults,
            edge_faults: Vec::new(),
            u,
            v,
            kind: QueryKind::Distance,
        }
    }

    /// A path query under the given vertex faults.
    pub fn path(artifact: &str, faults: Vec<NodeId>, u: NodeId, v: NodeId) -> Self {
        Query {
            artifact: artifact.to_string(),
            faults,
            edge_faults: Vec::new(),
            u,
            v,
            kind: QueryKind::Path,
        }
    }

    /// A stretch-certificate query under the given vertex faults.
    pub fn certificate(artifact: &str, faults: Vec<NodeId>, u: NodeId, v: NodeId) -> Self {
        Query {
            artifact: artifact.to_string(),
            faults,
            edge_faults: Vec::new(),
            u,
            v,
            kind: QueryKind::Certificate,
        }
    }

    /// Scopes this query to failed edges instead of failed vertices (for
    /// artifacts declaring [`FaultModel::Edge`]).
    pub fn with_edge_faults(mut self, edge_faults: Vec<(NodeId, NodeId)>) -> Self {
        self.edge_faults = edge_faults;
        self.faults = Vec::new();
        self
    }
}

/// The answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Answer to a [`QueryKind::Distance`] query.
    Distance(f64),
    /// Answer to a [`QueryKind::Path`] query (`None` when disconnected).
    Path(Option<Vec<NodeId>>),
    /// Answer to a [`QueryKind::Certificate`] query.
    Certificate(StretchCertificate),
}

impl QueryOutcome {
    /// The distance, if this is a distance outcome.
    pub fn as_distance(&self) -> Option<f64> {
        match self {
            QueryOutcome::Distance(d) => Some(*d),
            _ => None,
        }
    }

    /// The certificate, if this is a certificate outcome.
    pub fn as_certificate(&self) -> Option<&StretchCertificate> {
        match self {
            QueryOutcome::Certificate(c) => Some(c),
            _ => None,
        }
    }
}

/// Tuning knobs of an [`Engine`], set via [`Engine::with_config`].
///
/// None of these affect results — batches are byte-identical at any worker
/// count and any cache capacity — only wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads query batches fan out across (clamped to at least 1).
    /// The default is one per available CPU.
    pub workers: usize,
    /// Capacity of the per-session LRU source cache the planner threads
    /// through grouped queries: the number of distinct query sources whose
    /// Dijkstra trees are kept per `(artifact, fault scope)` group. `0`
    /// disables caching. The default is 64. Lookups scan the recency list
    /// linearly, so keep this in the tens-to-hundreds range — at that size
    /// the scan is noise next to the Dijkstra run a hit saves, but a huge
    /// capacity would make every query pay an `O(capacity)` walk.
    pub source_cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: par::available_threads(),
            source_cache_capacity: 64,
        }
    }
}

/// A point-in-time snapshot of an [`Engine`]'s serving counters
/// ([`Engine::stats`]).
///
/// Counters accumulate across every [`Engine::run_batch`] and
/// [`Engine::apply_deltas`] call over the engine's lifetime (the naive
/// reference executor [`Engine::run_batch_naive`] is deliberately
/// uninstrumented). They are observability only — they never influence
/// answers. Clones of an engine share one stats sink, so a server handing
/// clones to worker threads reads fleet-wide totals from any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Batches executed through [`Engine::run_batch`].
    pub batches: u64,
    /// Total queries across those batches.
    pub queries: u64,
    /// `(artifact, fault scope)` groups the planner formed.
    pub planner_groups: u64,
    /// Work units the planner fanned out (groups after splitting).
    pub planner_units: u64,
    /// Source-cache hits inside grouped units (queries answered from a
    /// resident Dijkstra tree).
    pub cache_hits: u64,
    /// Source-cache misses inside grouped units (queries that ran a full
    /// traversal). Singleton units skip the cache machinery entirely and are
    /// counted in neither hits nor misses.
    pub cache_misses: u64,
    /// Warm artifact swaps completed by [`Engine::apply_deltas`] (one per
    /// successfully installed version).
    pub swaps: u64,
    /// Edge deltas applied across those swaps.
    pub deltas_applied: u64,
    /// Swaps whose new version came from a full rebuild rather than an
    /// incremental patch (see
    /// [`RebuildPolicy`]).
    pub rebuilds: u64,
}

impl EngineStats {
    /// Cache hits as a fraction of cache-visible queries (`0.0` when no
    /// grouped query has been served yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Shared atomic counters behind [`Engine::stats`]. Relaxed ordering is
/// enough: the counters are monotone tallies with no cross-field invariant a
/// reader could observe torn.
#[derive(Debug, Default)]
struct StatsCell {
    batches: AtomicU64,
    queries: AtomicU64,
    planner_groups: AtomicU64,
    planner_units: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    swaps: AtomicU64,
    deltas_applied: AtomicU64,
    rebuilds: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            planner_groups: self.planner_groups.load(Ordering::Relaxed),
            planner_units: self.planner_units.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// A registered serving target: one flat artifact, a sharded one whose
/// queries scatter-gather over a boundary overlay, or a dynamic one carrying
/// its recipe and delta log. Every variant is an `Arc`, so a registry
/// snapshot is a cheap map clone and an in-flight batch keeps the version it
/// planned against alive across a concurrent swap.
#[derive(Debug, Clone)]
enum Registered {
    Single(Arc<FtSpanner>),
    Sharded(Arc<ShardedArtifact>),
    Dynamic(Arc<DynamicArtifact>),
}

/// One consistent view of the registry: all queries of a batch are answered
/// from a single snapshot, taken once before planning.
type Snapshot = BTreeMap<String, Registered>;

/// An owned view of a registered serving target, mirroring the three
/// registration paths ([`Engine::register`] / [`Engine::register_sharded`] /
/// [`Engine::register_dynamic`]) without forcing callers to guess which one
/// a name went through.
///
/// Obtained from [`Engine::artifact_handle`]. The uniform accessors
/// (`fault_model`, `stretch`, [`ArtifactHandle::summary`], …) answer the
/// questions a listing or routing layer asks without branching on the
/// artifact kind; `as_single` / `as_sharded` / `as_dynamic` recover the
/// concrete type when a caller genuinely needs one shape. The handle holds
/// `Arc`s, so it stays valid (pinned to the version it was taken at) even if
/// the artifact is concurrently swapped or unregistered.
#[derive(Debug, Clone)]
pub enum ArtifactHandle {
    /// A flat artifact registered through [`Engine::register`].
    Single(Arc<FtSpanner>),
    /// A sharded artifact registered through [`Engine::register_sharded`].
    Sharded(Arc<ShardedArtifact>),
    /// A dynamic artifact registered through [`Engine::register_dynamic`].
    Dynamic(Arc<DynamicArtifact>),
}

impl ArtifactHandle {
    /// Declared fault model.
    pub fn fault_model(&self) -> FaultModel {
        match self {
            ArtifactHandle::Single(a) => a.fault_model(),
            ArtifactHandle::Sharded(a) => a.fault_model(),
            ArtifactHandle::Dynamic(d) => d.artifact().fault_model(),
        }
    }

    /// Declared fault budget `r`.
    pub fn fault_budget(&self) -> usize {
        match self {
            ArtifactHandle::Single(a) => a.fault_budget(),
            ArtifactHandle::Sharded(a) => a.fault_budget(),
            ArtifactHandle::Dynamic(d) => d.artifact().fault_budget(),
        }
    }

    /// Declared stretch bound `k`.
    pub fn stretch(&self) -> f64 {
        match self {
            ArtifactHandle::Single(a) => a.stretch(),
            ArtifactHandle::Sharded(a) => a.stretch(),
            ArtifactHandle::Dynamic(d) => d.artifact().stretch(),
        }
    }

    /// Vertices of the (whole) source graph.
    pub fn node_count(&self) -> usize {
        match self {
            ArtifactHandle::Single(a) => a.node_count(),
            ArtifactHandle::Sharded(a) => a.node_count(),
            ArtifactHandle::Dynamic(d) => d.artifact().node_count(),
        }
    }

    /// Edges of the spanner (for sharded artifacts: the union spanner,
    /// shard spanners plus cut edges).
    pub fn spanner_edge_count(&self) -> usize {
        match self {
            ArtifactHandle::Single(a) => a.spanner_edge_count(),
            ArtifactHandle::Sharded(a) => a.spanner_edge_count(),
            ArtifactHandle::Dynamic(d) => d.artifact().spanner_edge_count(),
        }
    }

    /// Number of shards, or `None` for a flat or dynamic artifact.
    pub fn shard_count(&self) -> Option<usize> {
        match self {
            ArtifactHandle::Single(_) | ArtifactHandle::Dynamic(_) => None,
            ArtifactHandle::Sharded(a) => Some(a.shard_count()),
        }
    }

    /// The flat artifact underneath. For a dynamic registration this is the
    /// currently served version — the handle's answer-giving shape is a
    /// plain [`FtSpanner`] in both cases.
    pub fn as_single(&self) -> Option<&FtSpanner> {
        match self {
            ArtifactHandle::Single(a) => Some(a),
            ArtifactHandle::Dynamic(d) => Some(d.artifact()),
            ArtifactHandle::Sharded(_) => None,
        }
    }

    /// The sharded artifact underneath, if this handle is one.
    pub fn as_sharded(&self) -> Option<&ShardedArtifact> {
        match self {
            ArtifactHandle::Sharded(a) => Some(a),
            _ => None,
        }
    }

    /// The dynamic artifact underneath, if this handle is one.
    pub fn as_dynamic(&self) -> Option<&DynamicArtifact> {
        match self {
            ArtifactHandle::Dynamic(d) => Some(d),
            _ => None,
        }
    }

    /// The owned, kind-agnostic shape of this artifact.
    pub fn summary(&self) -> ArtifactSummary {
        ArtifactSummary {
            fault_model: self.fault_model(),
            fault_budget: self.fault_budget(),
            stretch: self.stretch(),
            nodes: self.node_count(),
            spanner_edges: self.spanner_edge_count(),
            shards: self.shard_count(),
        }
    }
}

/// The serving-relevant shape of a registered artifact, uniform across flat,
/// sharded and dynamic registrations ([`Engine::artifact_summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArtifactSummary {
    /// Declared fault model.
    pub fault_model: FaultModel,
    /// Declared fault budget `r`.
    pub fault_budget: usize,
    /// Declared stretch bound `k`.
    pub stretch: f64,
    /// Vertices of the (whole) source graph.
    pub nodes: usize,
    /// Edges of the spanner (for sharded artifacts: the union spanner,
    /// shard spanners plus cut edges).
    pub spanner_edges: usize,
    /// Number of shards, or `None` for a flat artifact.
    pub shards: Option<usize>,
}

/// A serving engine holding named [`FtSpanner`] artifacts and executing
/// query batches through a session-reusing planner across worker threads.
///
/// Results are returned in input order and depend only on the artifacts and
/// the queries — never on the worker count or the cache capacity — so
/// repeated runs of the same batch are byte-identical.
///
/// Clones share everything: the artifact registry (so a swap through one
/// clone is visible to all), the [`EngineStats`] sink, but each clone keeps
/// its own [`EngineConfig`]. A server hands clones to worker threads and
/// applies deltas through any of them.
#[derive(Debug, Clone)]
pub struct Engine {
    artifacts: Arc<RwLock<Snapshot>>,
    config: EngineConfig,
    stats: Arc<StatsCell>,
}

impl Engine {
    /// An empty engine with the default [`EngineConfig`].
    pub fn new() -> Self {
        Engine {
            artifacts: Arc::new(RwLock::new(BTreeMap::new())),
            config: EngineConfig::default(),
            stats: Arc::new(StatsCell::default()),
        }
    }

    /// A snapshot of the engine's lifetime serving counters.
    ///
    /// Counters are shared across clones of this engine, so a server handing
    /// clones to worker threads can read fleet-wide totals from any clone.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// Replaces the whole configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self.config.workers = self.config.workers.max(1);
        self
    }

    /// Sets the number of worker threads (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Sets the per-group LRU source-cache capacity (`0` disables caching).
    pub fn with_source_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.source_cache_capacity = capacity;
        self
    }

    /// The engine's current configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn registry(&self) -> std::sync::RwLockReadGuard<'_, Snapshot> {
        self.artifacts.read().expect("artifact registry poisoned")
    }

    fn registry_mut(&self) -> std::sync::RwLockWriteGuard<'_, Snapshot> {
        self.artifacts.write().expect("artifact registry poisoned")
    }

    /// One consistent view of the registry for a whole batch: a cheap map
    /// clone of `Arc`s taken under the read lock.
    fn snapshot(&self) -> Snapshot {
        self.registry().clone()
    }

    /// Registers (or replaces) an artifact under `name`.
    pub fn register(&mut self, name: &str, artifact: FtSpanner) -> &mut Self {
        self.registry_mut()
            .insert(name.to_string(), Registered::Single(Arc::new(artifact)));
        self
    }

    /// Registers (or replaces) a sharded artifact under `name`. Sharded
    /// artifacts serve the same [`Query`] values as flat ones — the routing
    /// (scatter-gather over the boundary overlay) is an engine concern, not
    /// a client concern.
    pub fn register_sharded(&mut self, name: &str, artifact: ShardedArtifact) -> &mut Self {
        self.registry_mut()
            .insert(name.to_string(), Registered::Sharded(Arc::new(artifact)));
        self
    }

    /// Registers (or replaces) a dynamic artifact under `name`. Dynamic
    /// artifacts serve the same [`Query`] values as flat ones and can be
    /// evolved in place with [`Engine::apply_deltas`].
    pub fn register_dynamic(&mut self, name: &str, artifact: DynamicArtifact) -> &mut Self {
        self.registry_mut()
            .insert(name.to_string(), Registered::Dynamic(Arc::new(artifact)));
        self
    }

    /// Looks up any registered artifact as a kind-agnostic
    /// [`ArtifactHandle`]. This is the one accessor listing and routing
    /// layers need; [`Engine::artifact`] / [`Engine::sharded_artifact`] /
    /// [`Engine::dynamic_artifact`] remain as kind-specific conveniences
    /// built on top of it.
    pub fn artifact_handle(&self, name: &str) -> Option<ArtifactHandle> {
        Some(match self.registry().get(name)? {
            Registered::Single(a) => ArtifactHandle::Single(Arc::clone(a)),
            Registered::Sharded(a) => ArtifactHandle::Sharded(Arc::clone(a)),
            Registered::Dynamic(d) => ArtifactHandle::Dynamic(Arc::clone(d)),
        })
    }

    /// Looks up the served [`FtSpanner`] of a flat **or dynamic**
    /// registration (for a dynamic one: the currently served version).
    /// `None` for names registered through [`Engine::register_sharded`]; use
    /// [`Engine::artifact_handle`] for a kind-agnostic view.
    pub fn artifact(&self, name: &str) -> Option<Arc<FtSpanner>> {
        match self.registry().get(name)? {
            Registered::Single(a) => Some(Arc::clone(a)),
            Registered::Dynamic(d) => Some(d.artifact_arc()),
            Registered::Sharded(_) => None,
        }
    }

    /// Looks up a registered *sharded* artifact.
    pub fn sharded_artifact(&self, name: &str) -> Option<Arc<ShardedArtifact>> {
        match self.registry().get(name)? {
            Registered::Sharded(a) => Some(Arc::clone(a)),
            _ => None,
        }
    }

    /// Looks up a registered *dynamic* artifact (the current version — a
    /// concurrent [`Engine::apply_deltas`] replaces the registry slot, never
    /// the value this `Arc` points at).
    pub fn dynamic_artifact(&self, name: &str) -> Option<Arc<DynamicArtifact>> {
        match self.registry().get(name)? {
            Registered::Dynamic(d) => Some(Arc::clone(d)),
            _ => None,
        }
    }

    /// The serving-relevant shape of a registered artifact, uniform across
    /// flat, sharded and dynamic registrations.
    pub fn artifact_summary(&self, name: &str) -> Option<ArtifactSummary> {
        Some(self.artifact_handle(name)?.summary())
    }

    /// The registered artifact names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.registry().keys().cloned().collect()
    }

    /// Number of registered artifacts.
    pub fn len(&self) -> usize {
        self.registry().len()
    }

    /// Returns `true` if no artifact is registered.
    pub fn is_empty(&self) -> bool {
        self.registry().is_empty()
    }

    /// Applies a delta batch to the dynamic artifact registered under
    /// `name`, building the next version **off the registry lock** and then
    /// swapping it in atomically.
    ///
    /// # Warm hand-off
    ///
    /// The sequence is: take the current version's `Arc` under a read lock;
    /// release the lock; run [`DynamicArtifact::apply`] (incremental repair
    /// or full rebuild per `policy`) while queries keep being served from
    /// the old version; re-take the lock for writing and swap the registry
    /// slot only if it still holds the version the batch was computed
    /// against (compare-and-swap on `Arc` identity). Batches that snapshot
    /// the registry before the swap finish against the old version —
    /// answers within one batch are always single-version — and the old
    /// version is freed when its last in-flight batch drops it.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownArtifact`] when `name` is not registered;
    /// [`CoreError::InvalidParameter`] when `name` is not a dynamic
    /// registration, when the batch is empty or invalid (see
    /// [`DynamicArtifact::apply`]), or when a concurrent `apply_deltas` /
    /// re-registration replaced the artifact while this batch was building —
    /// in that case nothing is swapped and the caller should retry against
    /// the new current version.
    pub fn apply_deltas(
        &self,
        name: &str,
        deltas: &[EdgeDelta],
        policy: &RebuildPolicy,
    ) -> Result<ApplyReport> {
        let current = match self.registry().get(name) {
            None => {
                return Err(CoreError::UnknownArtifact {
                    name: name.to_string(),
                })
            }
            Some(Registered::Dynamic(d)) => Arc::clone(d),
            Some(_) => {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "artifact `{name}` was not registered as dynamic; register it \
                         through Engine::register_dynamic to apply deltas"
                    ),
                })
            }
        };
        // Build v_{k+1} with no lock held: v_k keeps serving throughout.
        let (next, report) = current.apply(deltas, policy)?;
        let next = Arc::new(next);
        {
            let mut registry = self.registry_mut();
            match registry.get_mut(name) {
                Some(Registered::Dynamic(slot)) if Arc::ptr_eq(slot, &current) => {
                    *slot = next;
                }
                _ => {
                    return Err(CoreError::InvalidParameter {
                        message: format!(
                            "artifact `{name}` changed while the delta batch was \
                             building; retry against the current version"
                        ),
                    })
                }
            }
        }
        self.stats
            .deltas_applied
            .fetch_add(report.applied as u64, Ordering::Relaxed);
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
        if !report.action.is_patch() {
            self.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    fn lookup<'s>(snapshot: &'s Snapshot, query: &Query) -> Result<&'s Registered> {
        snapshot
            .get(&query.artifact)
            .ok_or_else(|| CoreError::UnknownArtifact {
                name: query.artifact.clone(),
            })
    }

    /// The flat serving surface of a registered target: a dynamic artifact
    /// answers queries exactly like its currently served [`FtSpanner`].
    fn as_flat(registered: &Registered) -> Option<&FtSpanner> {
        match registered {
            Registered::Single(a) => Some(a),
            Registered::Dynamic(d) => Some(d.artifact()),
            Registered::Sharded(_) => None,
        }
    }

    /// Opens the session a query asks for on a flat artifact, mirroring the
    /// fault-kind checks of the naive per-query path exactly.
    ///
    /// A query carrying the wrong kind of faults for the artifact is a
    /// typed error — silently ignoring the supplied fault set would return
    /// confidently wrong (unmasked) answers.
    fn open_single<'e>(&self, artifact: &'e FtSpanner, query: &Query) -> Result<FaultSession<'e>> {
        if artifact.fault_model() == FaultModel::Edge {
            if !query.faults.is_empty() {
                return Err(CoreError::FaultModelMismatch {
                    declared: FaultModel::Edge,
                    requested: FaultModel::Vertex,
                });
            }
            artifact.under_edge_faults(&query.edge_faults)
        } else {
            if !query.edge_faults.is_empty() {
                return Err(CoreError::FaultModelMismatch {
                    declared: FaultModel::Vertex,
                    requested: FaultModel::Edge,
                });
            }
            artifact.under_faults(&query.faults)
        }
    }

    /// The sharded analogue of [`Engine::open_single`]: identical fault-kind
    /// checks, scatter-gather session underneath.
    fn open_sharded<'e>(
        &self,
        artifact: &'e ShardedArtifact,
        query: &Query,
    ) -> Result<ShardedSession<'e>> {
        let capacity = self.config.source_cache_capacity;
        if artifact.fault_model() == FaultModel::Edge {
            if !query.faults.is_empty() {
                return Err(CoreError::FaultModelMismatch {
                    declared: FaultModel::Edge,
                    requested: FaultModel::Vertex,
                });
            }
            artifact.under_edge_faults_with_capacity(&query.edge_faults, capacity)
        } else {
            if !query.edge_faults.is_empty() {
                return Err(CoreError::FaultModelMismatch {
                    declared: FaultModel::Vertex,
                    requested: FaultModel::Edge,
                });
            }
            artifact.under_faults_with_capacity(&query.faults, capacity)
        }
    }

    fn answer(&self, snapshot: &Snapshot, query: &Query) -> Result<QueryOutcome> {
        match Self::lookup(snapshot, query)? {
            Registered::Sharded(artifact) => {
                let mut session = self.open_sharded(artifact, query)?;
                Self::answer_sharded(&mut session, query)
            }
            registered => {
                let artifact = Self::as_flat(registered).expect("non-sharded target is flat");
                let session = self.open_single(artifact, query)?;
                Ok(match query.kind {
                    QueryKind::Distance => {
                        QueryOutcome::Distance(session.distance(query.u, query.v)?)
                    }
                    QueryKind::Path => QueryOutcome::Path(session.path(query.u, query.v)?),
                    QueryKind::Certificate => {
                        QueryOutcome::Certificate(session.stretch_certificate(query.u, query.v)?)
                    }
                })
            }
        }
    }

    fn answer_sharded(session: &mut ShardedSession<'_>, query: &Query) -> Result<QueryOutcome> {
        Ok(match query.kind {
            QueryKind::Distance => QueryOutcome::Distance(session.distance(query.u, query.v)?),
            QueryKind::Path => QueryOutcome::Path(session.path(query.u, query.v)?),
            QueryKind::Certificate => {
                QueryOutcome::Certificate(session.stretch_certificate(query.u, query.v)?)
            }
        })
    }

    fn answer_cached(
        &self,
        session: &mut CachedSession<'_>,
        query: &Query,
    ) -> Result<QueryOutcome> {
        Ok(match query.kind {
            QueryKind::Distance => QueryOutcome::Distance(session.distance(query.u, query.v)?),
            QueryKind::Path => QueryOutcome::Path(session.path(query.u, query.v)?),
            QueryKind::Certificate => {
                QueryOutcome::Certificate(session.stretch_certificate(query.u, query.v)?)
            }
        })
    }

    /// Runs one planned work unit: all of `indices` share a canonical fault
    /// scope, so one session (with one source cache) serves them all. If the
    /// shared session cannot be opened, every query is answered naively so
    /// each reports exactly the error it would have produced on its own —
    /// error queries never poison their group.
    fn run_unit(
        &self,
        snapshot: &Snapshot,
        queries: &[Query],
        indices: &[usize],
    ) -> Vec<Result<QueryOutcome>> {
        // A unit of one query has nothing to reuse; skip the cache
        // machinery (the cache is transparent, so the answer is identical).
        if let [i] = indices {
            return vec![self.answer(snapshot, &queries[*i])];
        }
        let naive = |indices: &[usize]| -> Vec<Result<QueryOutcome>> {
            indices
                .iter()
                .map(|&i| self.answer(snapshot, &queries[i]))
                .collect()
        };
        match Self::lookup(snapshot, &queries[indices[0]]) {
            Err(_) => naive(indices),
            Ok(Registered::Sharded(artifact)) => {
                match self.open_sharded(artifact, &queries[indices[0]]) {
                    Ok(mut session) => {
                        let results = indices
                            .iter()
                            .map(|&i| Self::answer_sharded(&mut session, &queries[i]))
                            .collect();
                        self.record_cache(session.cache_stats());
                        results
                    }
                    Err(_) => naive(indices),
                }
            }
            Ok(registered) => {
                let artifact = Self::as_flat(registered).expect("non-sharded target is flat");
                match self.open_single(artifact, &queries[indices[0]]) {
                    Ok(session) => {
                        let mut cached = session.cached(self.config.source_cache_capacity);
                        let results = indices
                            .iter()
                            .map(|&i| self.answer_cached(&mut cached, &queries[i]))
                            .collect();
                        self.record_cache(cached.cache_stats());
                        results
                    }
                    Err(_) => naive(indices),
                }
            }
        }
    }

    fn record_cache(&self, cache: ftspan_core::serve::CacheStats) {
        self.stats
            .cache_hits
            .fetch_add(cache.hits, Ordering::Relaxed);
        self.stats
            .cache_misses
            .fetch_add(cache.misses, Ordering::Relaxed);
    }

    /// Executes a batch of queries through the query planner and returns one
    /// result per query **in input order**.
    ///
    /// The planner snapshots the registry **once** (so every query in the
    /// batch — and every retry inside it — sees the same artifact
    /// versions, even while [`Engine::apply_deltas`] swaps concurrently),
    /// canonicalizes each query's fault scope, groups the batch by
    /// `(artifact, fault scope)`, builds each group's session **once**,
    /// reuses per-source Dijkstra trees within a group
    /// ([`EngineConfig::source_cache_capacity`]) and fans the groups out
    /// across the worker pool (large groups are split so a single hot scope
    /// still uses every worker).
    ///
    /// Per-query failures (unknown artifact, oversized fault set, unknown
    /// vertex, mismatched fault kind) are reported in the corresponding
    /// slot; they never abort the rest of the batch, and they are identical
    /// to what [`Engine::run_batch_naive`] reports for the same query.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Result<QueryOutcome>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let snapshot = self.snapshot();
        let workers = self.config.workers.max(1).min(queries.len());

        // Group by canonical (artifact, fault scope).
        let mut groups: BTreeMap<ScopeKey<'_>, Vec<usize>> = BTreeMap::new();
        for (i, query) in queries.iter().enumerate() {
            groups.entry(ScopeKey::of(query)).or_default().push(i);
        }
        self.stats
            .planner_groups
            .fetch_add(groups.len() as u64, Ordering::Relaxed);

        // Split every group into work units of at most `ceil(batch/workers)`
        // queries: few big groups still spread across the pool, many small
        // groups each stay one unit.
        let unit_size = queries.len().div_ceil(workers);
        let units: Vec<Vec<usize>> = groups
            .into_values()
            .flat_map(|indices| {
                indices
                    .chunks(unit_size)
                    .map(<[usize]>::to_vec)
                    .collect::<Vec<_>>()
            })
            .collect();

        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.stats
            .planner_units
            .fetch_add(units.len() as u64, Ordering::Relaxed);

        let per_unit = par::map(workers, units.len(), |i| {
            self.run_unit(&snapshot, queries, &units[i])
        });

        let mut results: Vec<Option<Result<QueryOutcome>>> = vec![None; queries.len()];
        for (unit, unit_results) in units.iter().zip(per_unit) {
            for (&i, result) in unit.iter().zip(unit_results) {
                results[i] = Some(result);
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every query index is planned into exactly one unit"))
            .collect()
    }

    /// The reference executor: answers every query sequentially in its own
    /// fresh session, with no planning, grouping or caching (it still
    /// snapshots the registry once, so its batches are single-version too).
    ///
    /// This is the semantics [`Engine::run_batch`] is pinned against (the
    /// planner must be observationally transparent); it exists for tests,
    /// benchmarks and debugging — serving traffic should use
    /// [`Engine::run_batch`].
    pub fn run_batch_naive(&self, queries: &[Query]) -> Vec<Result<QueryOutcome>> {
        let snapshot = self.snapshot();
        queries.iter().map(|q| self.answer(&snapshot, q)).collect()
    }
}

/// The canonical fault scope of a query: artifact name plus sorted,
/// deduplicated vertex faults and endpoint-normalized, sorted, deduplicated
/// edge faults. Two queries with the same key are served by one session.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ScopeKey<'q> {
    artifact: &'q str,
    vertex_faults: Vec<usize>,
    edge_faults: Vec<(usize, usize)>,
}

impl<'q> ScopeKey<'q> {
    fn of(query: &'q Query) -> Self {
        let mut vertex_faults: Vec<usize> = query.faults.iter().map(|f| f.index()).collect();
        vertex_faults.sort_unstable();
        vertex_faults.dedup();
        let mut edge_faults: Vec<(usize, usize)> = query
            .edge_faults
            .iter()
            .map(|&(u, v)| {
                let (u, v) = (u.index(), v.index());
                (u.min(v), u.max(v))
            })
            .collect();
        edge_faults.sort_unstable();
        edge_faults.dedup();
        ScopeKey {
            artifact: &query.artifact,
            vertex_faults,
            edge_faults,
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtSpannerBuilder;
    use ftspan_core::{BuildRecipe, DynamicArtifact, SpannerRequest};
    use ftspan_graph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn engine_with_artifact(seed: u64) -> (Engine, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(24, 0.25, generate::WeightKind::Unit, &mut rng);
        let artifact = FtSpannerBuilder::new("conversion")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        let n = g.node_count();
        let mut engine = Engine::new();
        engine.register("net", artifact);
        (engine, n)
    }

    fn dynamic_recipe(faults: usize) -> BuildRecipe {
        let request = SpannerRequest {
            faults,
            stretch: 3.0,
            iterations: Some(6),
            threads: Some(1),
            ..SpannerRequest::default()
        };
        BuildRecipe::new("corollary-2.2", request, 2011)
    }

    #[test]
    fn batches_are_deterministic_across_worker_counts() {
        let (engine, n) = engine_with_artifact(1);
        let queries: Vec<Query> = (0..n)
            .flat_map(|u| {
                (0..n).map(move |v| {
                    Query::distance(
                        "net",
                        vec![NodeId::new((u + v) % n)],
                        NodeId::new(u),
                        NodeId::new(v),
                    )
                })
            })
            .collect();
        let reference = engine.clone().with_workers(1).run_batch(&queries);
        for workers in [2usize, 3, 8] {
            let got = engine.clone().with_workers(workers).run_batch(&queries);
            assert_eq!(reference, got, "worker count {workers} changed the batch");
        }
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        let (engine, _) = engine_with_artifact(2);
        let queries = vec![
            Query::distance("net", vec![], NodeId::new(0), NodeId::new(1)),
            Query::distance("missing", vec![], NodeId::new(0), NodeId::new(1)),
            Query::distance(
                "net",
                vec![NodeId::new(0), NodeId::new(1)], // budget is 1
                NodeId::new(2),
                NodeId::new(3),
            ),
            Query::path("net", vec![], NodeId::new(0), NodeId::new(5)),
        ];
        let results = engine.run_batch(&queries);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::UnknownArtifact { .. })));
        assert!(matches!(results[2], Err(CoreError::TooManyFaults { .. })));
        assert!(results[3].is_ok());
    }

    #[test]
    fn registry_of_artifacts_is_inspectable() {
        let (mut engine, _) = engine_with_artifact(3);
        assert_eq!(engine.names(), vec!["net"]);
        assert_eq!(engine.len(), 1);
        assert!(!engine.is_empty());
        assert!(engine.artifact("net").is_some());
        assert!(engine.artifact("nope").is_none());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generate::connected_gnp(10, 0.4, generate::WeightKind::Unit, &mut rng);
        let other = FtSpannerBuilder::new("corollary-2.2")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        engine.register("alt", other);
        assert_eq!(engine.names(), vec!["alt", "net"]);
    }

    #[test]
    fn artifact_handle_is_uniform_across_kinds() {
        let (mut engine, _) = engine_with_artifact(6);
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        let g = generate::connected_gnp(30, 0.2, generate::WeightKind::Unit, &mut rng);
        let builder = FtSpannerBuilder::new("conversion").faults(1).seed(60);
        let config = ftspan_graph::partition::PartitionConfig::new(3).with_seed(60);
        let sharded = crate::shard::ShardedArtifact::build(&g, &builder, &config).unwrap();
        engine.register_sharded("backbone", sharded);
        let live = DynamicArtifact::build(&g, dynamic_recipe(1)).unwrap();
        engine.register_dynamic("live", live);

        // The handle answers shape questions without branching on kind, and
        // its summary is exactly what artifact_summary reports.
        for name in ["net", "backbone", "live"] {
            let handle = engine.artifact_handle(name).unwrap();
            assert_eq!(Some(handle.summary()), engine.artifact_summary(name));
        }
        assert!(engine.artifact_handle("missing").is_none());

        // Kind-specific recovery mirrors Registered::{Single, Sharded,
        // Dynamic}.
        let flat = engine.artifact_handle("net").unwrap();
        assert!(flat.as_single().is_some());
        assert!(flat.as_sharded().is_none());
        assert!(flat.as_dynamic().is_none());
        assert_eq!(flat.shard_count(), None);
        let sharded = engine.artifact_handle("backbone").unwrap();
        assert!(sharded.as_single().is_none());
        assert!(sharded.as_sharded().is_some());
        assert!(sharded.as_dynamic().is_none());
        assert_eq!(sharded.shard_count(), Some(3));
        assert_eq!(sharded.node_count(), 30);
        let dynamic = engine.artifact_handle("live").unwrap();
        assert!(dynamic.as_dynamic().is_some());
        assert!(dynamic.as_sharded().is_none());
        // A dynamic handle's serving surface is its current flat version.
        assert!(dynamic.as_single().is_some());
        assert_eq!(dynamic.shard_count(), None);

        // The legacy kind-specific accessors are now thin wrappers; they
        // must agree with the handle.
        assert!(engine.artifact("net").is_some());
        assert!(engine.artifact("backbone").is_none());
        assert!(engine.artifact("live").is_some());
        assert!(engine.sharded_artifact("backbone").is_some());
        assert!(engine.sharded_artifact("net").is_none());
        assert!(engine.dynamic_artifact("live").is_some());
        assert!(engine.dynamic_artifact("net").is_none());
    }

    #[test]
    fn empty_batch_is_empty() {
        let (engine, _) = engine_with_artifact(5);
        assert!(engine.run_batch(&[]).is_empty());
    }

    #[test]
    fn planner_matches_naive_execution_exactly() {
        // A messy batch: repeated fault scopes in different orders and with
        // duplicates, multiple artifacts, every query kind, interleaved
        // error queries. The planner must reproduce the naive results slot
        // for slot.
        let (mut engine, n) = engine_with_artifact(8);
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        let g = generate::connected_gnp(18, 0.3, generate::WeightKind::Unit, &mut rng);
        let second = FtSpannerBuilder::new("corollary-2.2")
            .faults(2)
            .build_artifact(&g)
            .unwrap();
        engine.register("alt", second);

        let mut queries = Vec::new();
        for i in 0..n {
            let (u, v) = (NodeId::new(i), NodeId::new((i * 5 + 2) % n));
            // Same canonical scope, permuted and duplicated raw fault lists.
            let scope = match i % 3 {
                0 => vec![NodeId::new(1), NodeId::new(4)],
                1 => vec![NodeId::new(4), NodeId::new(1)],
                _ => vec![NodeId::new(4), NodeId::new(1), NodeId::new(4)],
            };
            queries.push(Query::distance("net", scope.clone(), u, v));
            queries.push(Query::path("net", scope.clone(), u, v));
            queries.push(Query::certificate(
                "alt",
                scope[..1.min(scope.len())].to_vec(),
                NodeId::new(i % 18),
                NodeId::new((i + 7) % 18),
            ));
            if i % 4 == 0 {
                queries.push(Query::distance("missing", vec![], u, v)); // unknown artifact
                queries.push(Query::distance("net", vec![NodeId::new(999)], u, v)); // bad fault
                queries.push(Query::distance("net", scope, NodeId::new(999), v));
                // bad endpoint
            }
        }
        let naive = engine.run_batch_naive(&queries);
        for workers in [1usize, 2, 8] {
            for capacity in [0usize, 1, 2, 64] {
                let planned = engine
                    .clone()
                    .with_workers(workers)
                    .with_source_cache_capacity(capacity)
                    .run_batch(&queries);
                assert_eq!(
                    naive, planned,
                    "planner diverged at workers={workers}, capacity={capacity}"
                );
            }
        }
    }

    #[test]
    fn error_queries_do_not_poison_their_group() {
        // Every query here lands in the same (artifact, scope) group; the
        // oversized scope makes the shared session unbuildable. Each query
        // must still report its own typed error, and a healthy group in the
        // same batch must be unaffected.
        let (engine, _) = engine_with_artifact(9);
        let too_many = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]; // budget is 1
        let queries = vec![
            Query::distance("net", too_many.clone(), NodeId::new(3), NodeId::new(4)),
            Query::certificate("net", too_many.clone(), NodeId::new(5), NodeId::new(6)),
            Query::distance("net", vec![NodeId::new(0)], NodeId::new(3), NodeId::new(4)),
            Query::path("net", too_many, NodeId::new(7), NodeId::new(8)),
        ];
        let results = engine.run_batch(&queries);
        assert!(matches!(
            results[0],
            Err(CoreError::TooManyFaults {
                given: 3,
                budget: 1
            })
        ));
        assert!(matches!(results[1], Err(CoreError::TooManyFaults { .. })));
        assert!(results[2].is_ok(), "healthy group poisoned by error group");
        assert!(matches!(results[3], Err(CoreError::TooManyFaults { .. })));
        assert_eq!(results, engine.run_batch_naive(&queries));
    }

    #[test]
    fn edge_fault_scopes_group_and_serve_through_the_planner() {
        // Edge-fault artifacts are queryable through the engine: scopes
        // canonicalize (endpoint order and duplicates collapse) and answers
        // match the naive path.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generate::connected_gnp(16, 0.35, generate::WeightKind::Unit, &mut rng);
        let artifact = FtSpannerBuilder::new("edge-fault")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        let (e_u, e_v) = {
            let id = artifact.spanner_edges().iter().next().unwrap();
            let e = *g.edge(id);
            (e.u, e.v)
        };
        let mut engine = Engine::new();
        engine.register("edges", artifact);
        let queries = vec![
            Query::distance("edges", vec![], NodeId::new(0), NodeId::new(5))
                .with_edge_faults(vec![(e_u, e_v)]),
            // Same scope, endpoints flipped and duplicated.
            Query::distance("edges", vec![], NodeId::new(5), NodeId::new(0))
                .with_edge_faults(vec![(e_v, e_u), (e_u, e_v)]),
            Query::certificate("edges", vec![], NodeId::new(1), NodeId::new(4))
                .with_edge_faults(vec![(e_v, e_u)]),
            // A non-existent edge is a typed error that stays per-query.
            Query::distance("edges", vec![], NodeId::new(0), NodeId::new(1))
                .with_edge_faults(vec![(NodeId::new(0), NodeId::new(999))]),
        ];
        let results = engine.run_batch(&queries);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        assert!(results[2].is_ok());
        assert!(results[3].is_err());
        assert_eq!(results, engine.run_batch_naive(&queries));
        // The symmetric pair answered symmetrically.
        assert_eq!(
            results[0].as_ref().unwrap().as_distance(),
            results[1].as_ref().unwrap().as_distance()
        );
    }

    #[test]
    fn config_is_plumbed_and_clamped() {
        let engine = Engine::new().with_config(EngineConfig {
            workers: 0,
            source_cache_capacity: 7,
        });
        assert_eq!(engine.config().workers, 1, "workers are clamped to 1");
        assert_eq!(engine.config().source_cache_capacity, 7);
        let engine = engine.with_workers(3).with_source_cache_capacity(0);
        assert_eq!(engine.config().workers, 3);
        assert_eq!(engine.config().source_cache_capacity, 0);
        assert!(EngineConfig::default().workers >= 1);
        assert_eq!(EngineConfig::default().source_cache_capacity, 64);
    }

    #[test]
    fn stats_accumulate_across_batches_and_are_shared_by_clones() {
        let (engine, n) = engine_with_artifact(11);
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(engine.stats().hit_rate(), 0.0);

        // One hot scope, repeated sources: grouped serving with cache reuse.
        let queries: Vec<Query> = (0..20)
            .map(|i| {
                Query::distance(
                    "net",
                    vec![NodeId::new(2)],
                    NodeId::new(i % 4),
                    NodeId::new((i + 5) % n),
                )
            })
            .collect();
        let clone = engine.clone().with_workers(1);
        let results = clone.run_batch(&queries);
        assert!(results.iter().all(|r| r.is_ok()));

        // The clone ran the batch, but the original sees the same counters.
        let stats = engine.stats();
        assert_eq!(stats, clone.stats());
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.queries, 20);
        assert_eq!(stats.planner_groups, 1);
        assert_eq!(stats.planner_units, 1);
        assert_eq!(stats.cache_hits + stats.cache_misses, 20);
        // 4 distinct sources fit the default cache; everything else hits.
        assert_eq!(stats.cache_misses, 4);
        assert_eq!(stats.cache_hits, 16);
        assert!((stats.hit_rate() - 16.0 / 20.0).abs() < 1e-12);

        // A second batch with two scopes accumulates on top.
        let more = vec![
            Query::distance("net", vec![], NodeId::new(0), NodeId::new(1)),
            Query::distance("net", vec![NodeId::new(3)], NodeId::new(0), NodeId::new(1)),
        ];
        clone.run_batch(&more);
        let stats = engine.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 22);
        assert_eq!(stats.planner_groups, 3);
        // Singleton units skip the cache machinery: no new hits or misses.
        assert_eq!(stats.cache_hits + stats.cache_misses, 20);

        // The naive reference path is uninstrumented.
        clone.run_batch_naive(&more);
        assert_eq!(engine.stats().batches, 2);

        // A fresh engine starts from zero — stats are per-lineage, not global.
        let (fresh, _) = engine_with_artifact(11);
        assert_eq!(fresh.stats(), EngineStats::default());
    }

    #[test]
    fn mismatched_fault_kind_is_rejected_not_ignored() {
        // Supplying vertex faults to an edge-fault artifact (or vice versa)
        // must be a typed error — never a silently unmasked answer.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generate::connected_gnp(16, 0.35, generate::WeightKind::Unit, &mut rng);
        let edge_model = FtSpannerBuilder::new("edge-fault")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        let (mut engine, _) = engine_with_artifact(7);
        engine.register("edges", edge_model);

        let vertex_faults_on_edge_artifact = Query::distance(
            "edges",
            vec![NodeId::new(3)],
            NodeId::new(0),
            NodeId::new(1),
        );
        let edge_faults_on_vertex_artifact =
            Query::distance("net", vec![], NodeId::new(0), NodeId::new(1))
                .with_edge_faults(vec![(NodeId::new(0), NodeId::new(1))]);
        let ok_edge_query = Query::distance("edges", vec![], NodeId::new(0), NodeId::new(1));
        let results = engine.run_batch(&[
            vertex_faults_on_edge_artifact,
            edge_faults_on_vertex_artifact,
            ok_edge_query,
        ]);
        assert!(matches!(
            results[0],
            Err(CoreError::FaultModelMismatch { .. })
        ));
        assert!(matches!(
            results[1],
            Err(CoreError::FaultModelMismatch { .. })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn apply_deltas_swaps_the_served_version_and_counts_it() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng);
        let live = DynamicArtifact::build(&g, dynamic_recipe(1)).unwrap();
        let mut engine = Engine::new();
        engine.register_dynamic("live", live);
        let v1 = engine.dynamic_artifact("live").unwrap();
        assert_eq!(v1.version(), 1);

        // Insert a fresh edge through a *clone*: the registry is shared, so
        // the original engine serves the new version after the swap.
        let clone = engine.clone();
        let fresh = (0..20)
            .flat_map(|u| (u + 1..20).map(move |v| (u, v)))
            .find(|&(u, v)| g.find_edge(NodeId::new(u), NodeId::new(v)).is_none())
            .map(|(u, v)| EdgeDelta::Insert {
                u: NodeId::new(u),
                v: NodeId::new(v),
                weight: 1.0,
            })
            .expect("a G(20, 0.3) draw is not complete");
        let report = clone
            .apply_deltas(
                "live",
                std::slice::from_ref(&fresh),
                &RebuildPolicy::always_patch(),
            )
            .unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.applied, 1);
        assert!(report.action.is_patch(), "always_patch must patch");

        let v2 = engine.dynamic_artifact("live").unwrap();
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.applied_seq(), 1);
        // The pre-swap handle still pins version 1 — in-flight batches that
        // snapshotted before the swap keep answering from it.
        assert_eq!(v1.version(), 1);

        let stats = engine.stats();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.rebuilds, 0);

        // Force the rebuild path; the rebuild counter moves.
        let (fu, fv) = fresh.endpoints();
        let report = engine
            .apply_deltas(
                "live",
                &[EdgeDelta::Delete { u: fu, v: fv }],
                &RebuildPolicy::always_rebuild(),
            )
            .unwrap();
        assert!(!report.action.is_patch());
        let stats = engine.stats();
        assert_eq!(stats.swaps, 2);
        assert_eq!(stats.deltas_applied, 2);
        assert_eq!(stats.rebuilds, 1);
        assert_eq!(engine.dynamic_artifact("live").unwrap().version(), 3);

        // Both swapped versions answer queries through the normal path.
        let results = engine.run_batch(&[Query::distance(
            "live",
            vec![NodeId::new(2)],
            NodeId::new(0),
            NodeId::new(5),
        )]);
        assert!(results[0].is_ok());
    }

    #[test]
    fn apply_deltas_rejects_missing_and_non_dynamic_targets() {
        let (engine, _) = engine_with_artifact(22);
        let delta = EdgeDelta::Delete {
            u: NodeId::new(0),
            v: NodeId::new(1),
        };
        assert!(matches!(
            engine.apply_deltas(
                "missing",
                std::slice::from_ref(&delta),
                &RebuildPolicy::default()
            ),
            Err(CoreError::UnknownArtifact { .. })
        ));
        // `net` is a flat registration: deltas need a recipe to replay.
        assert!(matches!(
            engine.apply_deltas("net", &[delta], &RebuildPolicy::default()),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn swapped_version_answers_like_a_fresh_build_on_the_post_delta_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = generate::connected_gnp(18, 0.35, generate::WeightKind::Unit, &mut rng);
        let live = DynamicArtifact::build(&g, dynamic_recipe(1)).unwrap();
        let mut engine = Engine::new();
        engine.register_dynamic("live", live);

        let (_, doomed) = g.edges().next().unwrap();
        let doomed = *doomed;
        let deltas = vec![
            EdgeDelta::Delete {
                u: doomed.u,
                v: doomed.v,
            },
            EdgeDelta::Insert {
                u: doomed.u,
                v: doomed.v,
                weight: 2.5,
            },
        ];
        engine
            .apply_deltas("live", &deltas, &RebuildPolicy::default())
            .unwrap();

        // A from-scratch dynamic build on the replayed graph must be the
        // same artifact, and the engine must serve identical answers.
        let replayed = engine
            .dynamic_artifact("live")
            .unwrap()
            .log()
            .replay(&g)
            .unwrap();
        let fresh = DynamicArtifact::build(&replayed, dynamic_recipe(1)).unwrap();
        assert_eq!(fresh.artifact(), engine.artifact("live").unwrap().as_ref());
    }
}
