//! Sharded fault-tolerant spanner artifacts: partition the input graph,
//! build one [`FtSpanner`] per part, and answer whole-graph queries by
//! scatter-gather over a boundary overlay.
//!
//! # Why sharding is sound
//!
//! Let `V = V₁ ∪ … ∪ V_p` be a partition of `G`'s vertices, let `H_i` be an
//! `r`-fault-tolerant `k`-spanner of the induced subgraph `G[V_i]`, and let
//! `C` be the set of *cut edges* (edges of `G` crossing parts). Then
//!
//! ```text
//! H  =  H₁ ∪ … ∪ H_p ∪ C
//! ```
//!
//! is an `r`-fault-tolerant `k`-spanner of `G`: the fault-tolerant spanner
//! condition only has to hold per *surviving edge* (Section 2 of the paper),
//! and every edge of `G` is either inside some `G[V_i]` — where `H_i`
//! provides the detour — or a cut edge kept verbatim in `H`.
//!
//! # Why the overlay is exact
//!
//! A query `d_{H\F}(u, v)` never materializes `H`. Instead each
//! [`ShardedSession`] runs Dijkstra over a small *overlay* graph whose nodes
//! are the boundary vertices (endpoints of cut edges) plus `u` and `v`, and
//! whose edges are
//!
//! * every surviving cut edge, with its own weight, and
//! * for each part, a clique over that part's overlay nodes where the edge
//!   `(a, b)` weighs `d_{H_i \ F}(a, b)` — a row of the per-shard session's
//!   Dijkstra tree.
//!
//! Any `u`–`v` path in `H \ F` decomposes into maximal intra-shard segments
//! joined by cut edges; each segment connects two overlay nodes of one part
//! and is no shorter than the corresponding clique edge. Conversely every
//! overlay edge is realized by an actual surviving path, so the overlay
//! distance equals `d_{H\F}(u, v)` — not an approximation of it. Baseline
//! distances `d_{G\F}` compose identically over the shard *source* graphs
//! (the induced subgraphs plus the cut edges are exactly `G`), which is what
//! [`ShardedSession::stretch_certificate`] reports against.
//!
//! Per-shard Dijkstra rows are served by [`CachedSession`]s, so the
//! "boundary distance matrix" is computed lazily and reused across queries
//! in a batch — there is no eager all-pairs phase.

use ftspan_core::serve::{CacheStats, CachedSession, FtSpanner};
use ftspan_core::{CoreError, FaultModel, Result, StretchCertificate};
use ftspan_graph::partition::{partition, PartitionConfig};
use ftspan_graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::FtSpannerBuilder;

/// An edge of the source graph whose endpoints live in different shards.
///
/// Cut edges are carried verbatim (they are part of the sharded spanner *and*
/// of the reassembled source graph) and are addressed by their global
/// endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEdge {
    /// Smaller-index endpoint (global vertex id).
    pub u: NodeId,
    /// Larger-index endpoint (global vertex id).
    pub v: NodeId,
    /// Edge length (finite, `>= 0`).
    pub weight: f64,
}

/// Internal: a cut edge plus the boundary ranks of its endpoints, so the
/// overlay Dijkstra never has to binary-search during relaxation.
#[derive(Debug, Clone, Copy)]
struct IndexedCut {
    u: NodeId,
    v: NodeId,
    weight: f64,
    u_rank: u32,
    v_rank: u32,
}

/// A fault-tolerant spanner artifact split across shards.
///
/// Built by [`ShardedArtifact::build`] (partition → per-shard construction
/// through the registry → overlay assembly) or reassembled from persisted
/// parts with [`ShardedArtifact::from_parts`]. Queries go through
/// [`ShardedSession`]s, which answer **exactly** what a single-artifact
/// session over the union spanner would answer (see the module docs for the
/// argument), while only ever running Dijkstra inside individual shards and
/// over the boundary overlay.
#[derive(Debug, Clone)]
pub struct ShardedArtifact {
    /// Per-part artifacts over shard-local vertex ids (`0..members[p].len()`).
    shards: Vec<FtSpanner>,
    /// Global vertex id → part index.
    part_of: Vec<u32>,
    /// Global vertex id → local id within its part.
    local_of: Vec<u32>,
    /// Part index → ascending global ids (local id = rank in this list).
    members: Vec<Vec<NodeId>>,
    /// Cut edges sorted by normalized `(u, v)` endpoint pair.
    cuts: Vec<IndexedCut>,
    /// Ascending global ids of all cut-edge endpoints.
    boundary: Vec<NodeId>,
    /// Boundary rank → indices into `cuts` incident to that vertex.
    cut_adj: Vec<Vec<u32>>,
    fault_model: FaultModel,
    faults: usize,
    stretch: f64,
    nodes: usize,
}

impl ShardedArtifact {
    /// Partitions `graph` with `config`, builds one spanner artifact per
    /// part through `builder` (each part sees an induced subgraph with
    /// shard-local vertex ids), and assembles the boundary overlay.
    ///
    /// Construction is deterministic: the partitioner is seeded, and every
    /// shard is built by the same (seeded) builder configuration.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Graph`] if partitioning fails (bad part count, or a
    ///   part's leftover vertices cannot be placed — see
    ///   [`ftspan_graph::GraphError::PartitionStalled`]).
    /// * Any construction error from the underlying registry algorithm.
    pub fn build(
        graph: &Graph,
        builder: &FtSpannerBuilder,
        config: &PartitionConfig,
    ) -> Result<Self> {
        let part = partition(graph, config).map_err(CoreError::Graph)?;
        let parts = part.part_count();
        let assignment: Vec<u32> = part.assignment().to_vec();

        // Induce one shard-local subgraph per part.
        let members: Vec<Vec<NodeId>> = (0..parts).map(|p| part.members(p)).collect();
        let mut local_of = vec![0u32; graph.node_count()];
        for list in &members {
            for (local, &g) in list.iter().enumerate() {
                local_of[g.index()] = local as u32;
            }
        }
        let mut shard_graphs: Vec<Graph> =
            members.iter().map(|list| Graph::new(list.len())).collect();
        let mut cut_edges = Vec::new();
        for (_, e) in graph.edges() {
            let (pu, pv) = (assignment[e.u.index()], assignment[e.v.index()]);
            if pu == pv {
                shard_graphs[pu as usize]
                    .add_edge(
                        NodeId::new(local_of[e.u.index()] as usize),
                        NodeId::new(local_of[e.v.index()] as usize),
                        e.weight,
                    )
                    .map_err(CoreError::Graph)?;
            } else {
                cut_edges.push(CutEdge {
                    u: e.u,
                    v: e.v,
                    weight: e.weight,
                });
            }
        }

        let shards = shard_graphs
            .iter()
            .map(|g| builder.build_artifact(g))
            .collect::<Result<Vec<_>>>()?;
        Self::from_parts(shards, assignment, cut_edges)
    }

    /// Reassembles a sharded artifact from its persisted parts: per-shard
    /// artifacts (over local ids), the global vertex → part assignment, and
    /// the cut edges.
    ///
    /// All derived structure (members, boundary, cut adjacency) is recomputed
    /// and the parts are cross-validated, so a corrupted manifest surfaces as
    /// a typed error rather than a wrong answer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the parts are mutually
    /// inconsistent: no shards, mismatched `(fault model, budget, stretch)`
    /// metadata across shards, an assignment entry naming a missing part, a
    /// shard whose node count disagrees with the assignment, or a cut edge
    /// that is out of bounds, self-looped, non-crossing, duplicated, or
    /// carrying a non-finite/negative weight.
    pub fn from_parts(
        shards: Vec<FtSpanner>,
        assignment: Vec<u32>,
        cut_edges: Vec<CutEdge>,
    ) -> Result<Self> {
        let invalid = |message: String| Err(CoreError::InvalidParameter { message });
        if shards.is_empty() {
            return invalid("sharded artifact needs at least one shard".into());
        }
        let (fault_model, faults, stretch) = (
            shards[0].fault_model(),
            shards[0].fault_budget(),
            shards[0].stretch(),
        );
        for (p, s) in shards.iter().enumerate() {
            if s.fault_model() != fault_model || s.fault_budget() != faults {
                return invalid(format!(
                    "shard {p} declares ({:?}, r={}) but shard 0 declares ({:?}, r={})",
                    s.fault_model(),
                    s.fault_budget(),
                    fault_model,
                    faults
                ));
            }
            if s.stretch() != stretch {
                return invalid(format!(
                    "shard {p} declares stretch {} but shard 0 declares {stretch}",
                    s.stretch()
                ));
            }
        }

        let nodes = assignment.len();
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); shards.len()];
        let mut local_of = vec![0u32; nodes];
        for (g, &p) in assignment.iter().enumerate() {
            let Some(list) = members.get_mut(p as usize) else {
                return invalid(format!(
                    "vertex {g} is assigned to part {p} but only {} shards exist",
                    shards.len()
                ));
            };
            local_of[g] = list.len() as u32;
            list.push(NodeId::new(g));
        }
        for (p, (s, list)) in shards.iter().zip(&members).enumerate() {
            if s.node_count() != list.len() {
                return invalid(format!(
                    "shard {p} has {} nodes but the assignment gives it {}",
                    s.node_count(),
                    list.len()
                ));
            }
        }

        let mut cuts: Vec<IndexedCut> = Vec::with_capacity(cut_edges.len());
        for c in &cut_edges {
            let (u, v) = if c.u <= c.v { (c.u, c.v) } else { (c.v, c.u) };
            if v.index() >= nodes || u == v {
                return invalid(format!(
                    "cut edge ({}, {}) is out of bounds or a self-loop for {nodes} nodes",
                    c.u.index(),
                    c.v.index()
                ));
            }
            if assignment[u.index()] == assignment[v.index()] {
                return invalid(format!(
                    "cut edge ({}, {}) does not cross parts (both in part {})",
                    u.index(),
                    v.index(),
                    assignment[u.index()]
                ));
            }
            if !c.weight.is_finite() || c.weight < 0.0 {
                return invalid(format!(
                    "cut edge ({}, {}) has invalid weight {}",
                    u.index(),
                    v.index(),
                    c.weight
                ));
            }
            cuts.push(IndexedCut {
                u,
                v,
                weight: c.weight,
                u_rank: 0,
                v_rank: 0,
            });
        }
        cuts.sort_by_key(|c| (c.u, c.v));
        if cuts
            .windows(2)
            .any(|w| (w[0].u, w[0].v) == (w[1].u, w[1].v))
        {
            return invalid("duplicate cut edge".into());
        }

        let mut boundary: Vec<NodeId> = cuts.iter().flat_map(|c| [c.u, c.v]).collect();
        boundary.sort_unstable();
        boundary.dedup();
        let rank = |x: NodeId| boundary.binary_search(&x).expect("endpoint is boundary") as u32;
        let mut cut_adj = vec![Vec::new(); boundary.len()];
        for (i, c) in cuts.iter_mut().enumerate() {
            c.u_rank = rank(c.u);
            c.v_rank = rank(c.v);
            cut_adj[c.u_rank as usize].push(i as u32);
            cut_adj[c.v_rank as usize].push(i as u32);
        }

        Ok(Self {
            shards,
            part_of: assignment,
            local_of,
            members,
            cuts,
            boundary,
            cut_adj,
            fault_model,
            faults,
            stretch,
            nodes,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard artifacts, over shard-local vertex ids.
    pub fn shards(&self) -> &[FtSpanner] {
        &self.shards
    }

    /// Global vertex id → part index.
    pub fn assignment(&self) -> &[u32] {
        &self.part_of
    }

    /// The part a global vertex belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn part_of(&self, v: NodeId) -> usize {
        self.part_of[v.index()] as usize
    }

    /// Ascending global ids of part `p` (local id = rank in this list).
    ///
    /// # Panics
    ///
    /// Panics if `p >= shard_count()`.
    pub fn shard_members(&self, p: usize) -> &[NodeId] {
        &self.members[p]
    }

    /// The cut edges, sorted by normalized endpoint pair.
    pub fn cut_edges(&self) -> impl Iterator<Item = CutEdge> + '_ {
        self.cuts.iter().map(|c| CutEdge {
            u: c.u,
            v: c.v,
            weight: c.weight,
        })
    }

    /// Number of cut edges.
    pub fn cut_edge_count(&self) -> usize {
        self.cuts.len()
    }

    /// Ascending global ids of all cut-edge endpoints.
    pub fn boundary_vertices(&self) -> &[NodeId] {
        &self.boundary
    }

    /// Declared fault model (uniform across shards).
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// Declared fault budget `r` (uniform across shards).
    pub fn fault_budget(&self) -> usize {
        self.faults
    }

    /// Declared stretch bound `k` (uniform across shards).
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// Number of vertices of the whole (unsharded) graph.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Edges of the union spanner `H = ∪ H_i ∪ C`.
    pub fn spanner_edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(FtSpanner::spanner_edge_count)
            .sum::<usize>()
            + self.cuts.len()
    }

    /// Edges of the reassembled source graph `G` (induced shard edges plus
    /// cut edges).
    pub fn source_edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(FtSpanner::source_edge_count)
            .sum::<usize>()
            + self.cuts.len()
    }

    /// Reassembles the union spanner `H = ∪ H_i ∪ C` as a single artifact
    /// over global vertex ids — the reference object the sharded query path
    /// is differential-tested against, and an escape hatch for tooling that
    /// wants one flat [`FtSpanner`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if the parts do not reassemble into a
    /// simple graph (cannot happen for artifacts built by
    /// [`ShardedArtifact::build`]).
    pub fn to_union_artifact(&self) -> Result<FtSpanner> {
        let mut g = Graph::new(self.nodes);
        let mut spanner_edges = Vec::new();
        for (p, shard) in self.shards.iter().enumerate() {
            let list = &self.members[p];
            for (id, e) in shard.source_graph().edges() {
                let global = g
                    .add_edge(list[e.u.index()], list[e.v.index()], e.weight)
                    .map_err(CoreError::Graph)?;
                if shard.spanner_edges().contains(id) {
                    spanner_edges.push(global);
                }
            }
        }
        for c in &self.cuts {
            let global = g.add_edge(c.u, c.v, c.weight).map_err(CoreError::Graph)?;
            spanner_edges.push(global);
        }
        let mut set = g.empty_edge_set();
        for e in spanner_edges {
            set.insert(e);
        }
        FtSpanner::from_edge_set(
            &g,
            set,
            self.shards[0].algorithm(),
            &format!("sharded union of {} parts", self.shards.len()),
            self.fault_model,
            self.faults,
            self.stretch,
        )
    }

    /// Opens a query session with no faults.
    pub fn session(&self) -> ShardedSession<'_> {
        self.under_faults(&[])
            .expect("empty fault set is always valid")
    }

    /// Opens a query session in which the given (global) vertices have
    /// failed, with a default per-shard source-cache capacity.
    ///
    /// # Errors
    ///
    /// Exactly the single-artifact contract of
    /// [`FtSpanner::under_faults`]: [`CoreError::FaultModelMismatch`] if the
    /// artifact declares edge faults, [`CoreError::UnknownNode`] for an
    /// out-of-bounds fault, [`CoreError::TooManyFaults`] if the deduplicated
    /// set exceeds the budget.
    pub fn under_faults(&self, faults: &[NodeId]) -> Result<ShardedSession<'_>> {
        self.under_faults_with_capacity(faults, self.default_capacity())
    }

    /// [`ShardedArtifact::under_faults`] with an explicit per-shard
    /// source-cache capacity (`0` disables caching; answers are identical at
    /// any capacity).
    ///
    /// # Errors
    ///
    /// See [`ShardedArtifact::under_faults`].
    pub fn under_faults_with_capacity(
        &self,
        faults: &[NodeId],
        capacity: usize,
    ) -> Result<ShardedSession<'_>> {
        if self.fault_model != FaultModel::Vertex {
            return Err(CoreError::FaultModelMismatch {
                declared: self.fault_model,
                requested: FaultModel::Vertex,
            });
        }
        let mut dead = vec![false; self.nodes];
        let mut distinct = 0usize;
        for &f in faults {
            if f.index() >= self.nodes {
                return Err(CoreError::UnknownNode {
                    node: f.index(),
                    nodes: self.nodes,
                });
            }
            if !dead[f.index()] {
                dead[f.index()] = true;
                distinct += 1;
            }
        }
        if distinct > self.faults {
            return Err(CoreError::TooManyFaults {
                given: distinct,
                budget: self.faults,
            });
        }
        // Scatter the global fault set into per-shard local fault lists. A
        // shard sees a subset of a within-budget set, so its own budget
        // check can never fire.
        let mut local: Vec<Vec<NodeId>> = vec![Vec::new(); self.shards.len()];
        if distinct > 0 {
            for (g, &d) in dead.iter().enumerate() {
                if d {
                    local[self.part_of[g] as usize].push(NodeId::new(self.local_of[g] as usize));
                }
            }
        }
        let sessions = self
            .shards
            .iter()
            .zip(&local)
            .map(|(s, f)| Ok(s.under_faults(f)?.cached(capacity)))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedSession {
            artifact: self,
            shards: sessions,
            dead: if distinct == 0 { Vec::new() } else { dead },
            dead_cut: Vec::new(),
            fault_count: distinct,
        })
    }

    /// Opens a query session in which the given edges (named by their global
    /// endpoints) have failed, with a default per-shard cache capacity.
    ///
    /// # Errors
    ///
    /// Exactly the single-artifact contract of
    /// [`FtSpanner::under_edge_faults`]: [`CoreError::FaultModelMismatch`]
    /// if the artifact declares vertex faults, [`CoreError::UnknownNode`] /
    /// [`CoreError::UnknownEdge`] for a bad endpoint or a non-edge,
    /// [`CoreError::TooManyFaults`] over budget.
    pub fn under_edge_faults(&self, faults: &[(NodeId, NodeId)]) -> Result<ShardedSession<'_>> {
        self.under_edge_faults_with_capacity(faults, self.default_capacity())
    }

    /// [`ShardedArtifact::under_edge_faults`] with an explicit per-shard
    /// source-cache capacity.
    ///
    /// # Errors
    ///
    /// See [`ShardedArtifact::under_edge_faults`].
    pub fn under_edge_faults_with_capacity(
        &self,
        faults: &[(NodeId, NodeId)],
        capacity: usize,
    ) -> Result<ShardedSession<'_>> {
        if self.fault_model != FaultModel::Edge {
            return Err(CoreError::FaultModelMismatch {
                declared: self.fault_model,
                requested: FaultModel::Edge,
            });
        }
        // Mirrors FtSpanner::under_edge_faults: per pair in input order —
        // endpoint bounds, then edge existence — then dedup, then budget.
        let mut dead_cut = vec![false; self.cuts.len()];
        let mut dead_local: Vec<Vec<bool>> = self
            .shards
            .iter()
            .map(|s| vec![false; s.source_edge_count()])
            .collect();
        let mut distinct = 0usize;
        let mut any_cut = false;
        for &(u, v) in faults {
            for x in [u, v] {
                if x.index() >= self.nodes {
                    return Err(CoreError::UnknownNode {
                        node: x.index(),
                        nodes: self.nodes,
                    });
                }
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            let missing = CoreError::UnknownEdge {
                u: u.index(),
                v: v.index(),
            };
            if a == b {
                return Err(missing);
            }
            let (pa, pb) = (self.part_of[a.index()], self.part_of[b.index()]);
            if pa == pb {
                let p = pa as usize;
                let (la, lb) = (
                    NodeId::new(self.local_of[a.index()] as usize),
                    NodeId::new(self.local_of[b.index()] as usize),
                );
                let id = self.shards[p]
                    .source_graph()
                    .find_edge(la, lb)
                    .ok_or(missing)?;
                if !dead_local[p][id.index()] {
                    dead_local[p][id.index()] = true;
                    distinct += 1;
                }
            } else {
                let i = self
                    .cuts
                    .binary_search_by_key(&(a, b), |c| (c.u, c.v))
                    .map_err(|_| missing)?;
                if !dead_cut[i] {
                    dead_cut[i] = true;
                    distinct += 1;
                    any_cut = true;
                }
            }
        }
        if distinct > self.faults {
            return Err(CoreError::TooManyFaults {
                given: distinct,
                budget: self.faults,
            });
        }
        let sessions = self
            .shards
            .iter()
            .zip(&dead_local)
            .map(|(s, mask)| {
                let pairs: Vec<(NodeId, NodeId)> = mask
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d)
                    .map(|(id, _)| {
                        let e = s.source_graph().edge(ftspan_graph::EdgeId::new(id));
                        (e.u, e.v)
                    })
                    .collect();
                Ok(s.under_edge_faults(&pairs)?.cached(capacity))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedSession {
            artifact: self,
            shards: sessions,
            dead: Vec::new(),
            dead_cut: if any_cut { dead_cut } else { Vec::new() },
            fault_count: distinct,
        })
    }

    /// Default per-shard source-cache capacity: enough to keep every
    /// boundary row of the largest clique warm, plus the two query
    /// endpoints.
    fn default_capacity(&self) -> usize {
        self.boundary.len() + 2
    }
}

/// How an overlay Dijkstra step reached a node: through a cut edge, or
/// through a shard-internal shortest path (a clique edge of part `p`).
#[derive(Debug, Clone, Copy)]
enum Via {
    Cut,
    Shard(u32),
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A fault-scoped query session over a [`ShardedArtifact`].
///
/// Mirrors the [`FaultSession`](ftspan_core::FaultSession) query surface —
/// `distance` / `path` / `stretch_certificate` with the same edge-case
/// semantics (`INFINITY` / `None` for dead or disconnected endpoints,
/// vacuous stretch `1.0`) — but routes every query through the boundary
/// overlay described in the module docs. Methods take `&mut self` because
/// shard Dijkstra rows are memoized in per-shard [`CachedSession`]s.
#[derive(Debug)]
pub struct ShardedSession<'a> {
    artifact: &'a ShardedArtifact,
    shards: Vec<CachedSession<'a>>,
    /// Global dead-vertex mask; empty when no vertex faults.
    dead: Vec<bool>,
    /// Dead cut-edge mask; empty when no cut edge is faulted.
    dead_cut: Vec<bool>,
    fault_count: usize,
}

impl<'a> ShardedSession<'a> {
    /// The artifact this session queries.
    pub fn artifact(&self) -> &'a ShardedArtifact {
        self.artifact
    }

    /// Number of distinct faults masked by this session (across all shards
    /// and cut edges).
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// Aggregated per-shard source-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats { hits: 0, misses: 0 };
        for s in &self.shards {
            let cs = s.cache_stats();
            total.hits += cs.hits;
            total.misses += cs.misses;
        }
        total
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        let n = self.artifact.nodes;
        if v.index() >= n {
            return Err(CoreError::UnknownNode {
                node: v.index(),
                nodes: n,
            });
        }
        Ok(())
    }

    fn is_dead(&self, v: NodeId) -> bool {
        !self.dead.is_empty() && self.dead[v.index()]
    }

    /// Shortest-path distance from `u` to `v` in the surviving union spanner
    /// `H \ F` (`INFINITY` when disconnected or an endpoint has failed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn distance(&mut self, u: NodeId, v: NodeId) -> Result<f64> {
        self.check_node(u)?;
        self.check_node(v)?;
        Ok(self.overlay(u, v, false, false)?.0)
    }

    /// Distance from `u` to `v` in the surviving *source* graph `G \ F` —
    /// the baseline the stretch guarantee compares against, composed from
    /// shard source graphs plus cut edges.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn baseline_distance(&mut self, u: NodeId, v: NodeId) -> Result<f64> {
        self.check_node(u)?;
        self.check_node(v)?;
        Ok(self.overlay(u, v, true, false)?.0)
    }

    /// A shortest surviving spanner path from `u` to `v` in global vertex
    /// ids, expanded through the shards the overlay route traverses (`None`
    /// when disconnected or an endpoint has failed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn path(&mut self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.check_node(u)?;
        self.check_node(v)?;
        Ok(self.overlay(u, v, false, true)?.1)
    }

    /// Produces a [`StretchCertificate`] for `(u, v)`: overlay spanner
    /// distance, overlay baseline distance, realized stretch against the
    /// declared bound, and a witnessing global path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn stretch_certificate(&mut self, u: NodeId, v: NodeId) -> Result<StretchCertificate> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (spanner_distance, path) = self.overlay(u, v, false, true)?;
        let (baseline_distance, _) = self.overlay(u, v, true, false)?;
        let stretch = if baseline_distance == 0.0 || baseline_distance.is_infinite() {
            1.0
        } else {
            spanner_distance / baseline_distance
        };
        Ok(StretchCertificate {
            u,
            v,
            spanner_distance,
            baseline_distance,
            stretch,
            bound: self.artifact.stretch,
            path,
        })
    }

    /// The exact overlay Dijkstra. `baseline` selects shard *source* rows
    /// (for `d_{G\F}`) instead of shard *spanner* rows (for `d_{H\F}`);
    /// `want_path` additionally expands the overlay route into a global
    /// vertex path.
    fn overlay(
        &mut self,
        u: NodeId,
        v: NodeId,
        baseline: bool,
        want_path: bool,
    ) -> Result<(f64, Option<Vec<NodeId>>)> {
        if self.is_dead(u) || self.is_dead(v) {
            return Ok((f64::INFINITY, None));
        }
        let art = self.artifact;
        let b = art.boundary.len();

        // Overlay nodes: every boundary vertex, plus u and v when they are
        // not boundary vertices themselves.
        let mut nodes: Vec<NodeId> = art.boundary.clone();
        let ui = match art.boundary.binary_search(&u) {
            Ok(i) => i,
            Err(_) => {
                nodes.push(u);
                nodes.len() - 1
            }
        };
        let vi = if v == u {
            ui
        } else {
            match art.boundary.binary_search(&v) {
                Ok(i) => i,
                Err(_) => {
                    nodes.push(v);
                    nodes.len() - 1
                }
            }
        };

        // Per-part lists of live overlay nodes: the clique targets.
        let mut part_nodes: Vec<Vec<u32>> = vec![Vec::new(); art.shards.len()];
        for (i, &x) in nodes.iter().enumerate() {
            if !self.is_dead(x) {
                part_nodes[art.part_of[x.index()] as usize].push(i as u32);
            }
        }

        let mut dist = vec![f64::INFINITY; nodes.len()];
        let mut parent: Vec<Option<(u32, Via)>> = if want_path {
            vec![None; nodes.len()]
        } else {
            Vec::new()
        };
        let mut heap = BinaryHeap::new();
        dist[ui] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: ui,
        });
        while let Some(HeapEntry { dist: d, node: i }) = heap.pop() {
            if d > dist[i] {
                continue;
            }
            if i == vi {
                break;
            }
            let x = nodes[i];
            let p = art.part_of[x.index()] as usize;
            let lx = NodeId::new(art.local_of[x.index()] as usize);
            let row = if baseline {
                self.shards[p].baseline_distances_from(lx)?
            } else {
                self.shards[p].distances_from(lx)?
            };
            for &j32 in &part_nodes[p] {
                let j = j32 as usize;
                if j == i {
                    continue;
                }
                let w = row[art.local_of[nodes[j].index()] as usize];
                if !w.is_finite() {
                    continue;
                }
                let nd = d + w;
                if nd < dist[j] {
                    dist[j] = nd;
                    if want_path {
                        parent[j] = Some((i as u32, Via::Shard(p as u32)));
                    }
                    heap.push(HeapEntry { dist: nd, node: j });
                }
            }
            if i < b {
                for &ci in &art.cut_adj[i] {
                    let ci = ci as usize;
                    if !self.dead_cut.is_empty() && self.dead_cut[ci] {
                        continue;
                    }
                    let c = &art.cuts[ci];
                    let (j, y) = if c.u == x {
                        (c.v_rank as usize, c.v)
                    } else {
                        (c.u_rank as usize, c.u)
                    };
                    // Never relax *into* a dead vertex: a live→dead cut edge
                    // must not give the dead endpoint a finite label that a
                    // second cut edge could route through.
                    if self.is_dead(y) {
                        continue;
                    }
                    let nd = d + c.weight;
                    if nd < dist[j] {
                        dist[j] = nd;
                        if want_path {
                            parent[j] = Some((i as u32, Via::Cut));
                        }
                        heap.push(HeapEntry { dist: nd, node: j });
                    }
                }
            }
        }

        let total = dist[vi];
        if !want_path || total.is_infinite() {
            return Ok((total, None));
        }

        // Expand the overlay route: cut hops contribute their far endpoint,
        // shard hops contribute the shard-internal shortest path.
        let mut hops = Vec::new();
        let mut cursor = vi;
        while cursor != ui {
            let (prev, via) = parent[cursor].expect("finite distance has a parent chain");
            hops.push((prev as usize, via, cursor));
            cursor = prev as usize;
        }
        hops.reverse();
        let mut path = vec![u];
        for (from, via, to) in hops {
            match via {
                Via::Cut => path.push(nodes[to]),
                Via::Shard(p) => {
                    let p = p as usize;
                    let (a, z) = (nodes[from], nodes[to]);
                    let (la, lz) = (
                        NodeId::new(art.local_of[a.index()] as usize),
                        NodeId::new(art.local_of[z.index()] as usize),
                    );
                    let local = if baseline {
                        // Baseline overlays are only ever run distance-only.
                        unreachable!("baseline overlay never expands paths")
                    } else {
                        self.shards[p].path(la, lz)?
                    };
                    let local = local.expect("finite clique edge has a witnessing path");
                    path.extend(local[1..].iter().map(|l| art.members[p][l.index()]));
                }
            }
        }
        Ok((total, Some(path)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build_sharded(n: usize, p: f64, parts: usize, seed: u64) -> (Graph, ShardedArtifact) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(n, p, generate::WeightKind::Unit, &mut rng);
        let builder = FtSpannerBuilder::new("conversion").faults(1).stretch(3.0);
        let sharded =
            ShardedArtifact::build(&g, &builder, &PartitionConfig::new(parts).with_seed(seed))
                .expect("sharded build succeeds");
        (g, sharded)
    }

    #[test]
    fn sharded_build_partitions_and_reassembles_the_graph() {
        let (g, sharded) = build_sharded(40, 0.15, 3, 7);
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.node_count(), g.node_count());
        assert_eq!(sharded.source_edge_count(), g.edge_count());
        let member_total: usize = (0..3).map(|p| sharded.shard_members(p).len()).sum();
        assert_eq!(member_total, g.node_count());
        // Every cut edge exists in G with the same weight, and crosses parts.
        for c in sharded.cut_edges() {
            let id = g.find_edge(c.u, c.v).expect("cut edge is a G edge");
            assert_eq!(g.edge(id).weight, c.weight);
            assert_ne!(sharded.part_of(c.u), sharded.part_of(c.v));
        }
        // The union artifact reassembles G exactly.
        let union = sharded.to_union_artifact().expect("union assembles");
        assert_eq!(union.node_count(), g.node_count());
        assert_eq!(union.source_edge_count(), g.edge_count());
        assert_eq!(union.spanner_edge_count(), sharded.spanner_edge_count());
    }

    #[test]
    fn sharded_distances_match_the_union_artifact_exactly() {
        let (g, sharded) = build_sharded(36, 0.18, 3, 11);
        let union = sharded.to_union_artifact().expect("union assembles");
        let faults = [NodeId::new(5)];
        let reference = union.under_faults(&faults).expect("session opens");
        let mut session = sharded.under_faults(&faults).expect("session opens");
        for u in 0..g.node_count() {
            let want = reference.distances_from(NodeId::new(u)).expect("row");
            for (v, &expected) in want.iter().enumerate() {
                let got = session
                    .distance(NodeId::new(u), NodeId::new(v))
                    .expect("distance");
                // Unit weights: every finite distance is an integer, so the
                // overlay must agree bit for bit.
                assert_eq!(got, expected, "distance({u}, {v}) under faults");
            }
        }
    }

    #[test]
    fn sharded_paths_are_valid_and_tight() {
        let (_, sharded) = build_sharded(30, 0.2, 2, 3);
        let union = sharded.to_union_artifact().expect("union assembles");
        let faults = [NodeId::new(2)];
        let reference = union.under_faults(&faults).expect("session opens");
        let mut session = sharded.under_faults(&faults).expect("session opens");
        let spanner_graph = union.source_graph();
        for u in 0..sharded.node_count() {
            for v in 0..sharded.node_count() {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                let d = session.distance(u, v).expect("distance");
                let path = session.path(u, v).expect("path");
                match path {
                    None => assert!(d.is_infinite()),
                    Some(p) => {
                        assert_eq!(p.first(), Some(&u));
                        assert_eq!(p.last(), Some(&v));
                        // Walk the path: every hop is a surviving spanner
                        // edge, and the lengths sum to the claimed distance.
                        let mut total = 0.0;
                        for w in p.windows(2) {
                            assert!(!reference
                                .distance(w[0], w[1])
                                .expect("edge check")
                                .is_infinite());
                            let id = spanner_graph
                                .find_edge(w[0], w[1])
                                .expect("path hop is a graph edge");
                            assert!(union.spanner_edges().contains(id));
                            total += spanner_graph.edge(id).weight;
                        }
                        if u != v {
                            assert_eq!(total, d, "path length equals distance");
                        }
                        assert!(!p.iter().any(|&x| x == NodeId::new(2)));
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_error_precedence_mirrors_the_single_artifact() {
        let (_, sharded) = build_sharded(24, 0.2, 2, 13);
        let n = sharded.node_count();
        // Unknown fault node beats the budget check (input order).
        assert!(matches!(
            sharded.under_faults(&[NodeId::new(n + 3), NodeId::new(0), NodeId::new(1)]),
            Err(CoreError::UnknownNode { node, nodes }) if node == n + 3 && nodes == n
        ));
        // Duplicates do not count against the budget.
        assert!(sharded
            .under_faults(&[NodeId::new(1), NodeId::new(1)])
            .is_ok());
        assert!(matches!(
            sharded.under_faults(&[NodeId::new(1), NodeId::new(2)]),
            Err(CoreError::TooManyFaults {
                given: 2,
                budget: 1
            })
        ));
        // Edge faults against a vertex-fault artifact are a model mismatch.
        assert!(matches!(
            sharded.under_edge_faults(&[(NodeId::new(0), NodeId::new(1))]),
            Err(CoreError::FaultModelMismatch {
                declared: FaultModel::Vertex,
                requested: FaultModel::Edge,
            })
        ));
        // Dead endpoints answer INFINITY/None, not an error.
        let mut session = sharded.under_faults(&[NodeId::new(4)]).expect("opens");
        assert!(session
            .distance(NodeId::new(4), NodeId::new(0))
            .expect("distance")
            .is_infinite());
        assert_eq!(
            session.path(NodeId::new(0), NodeId::new(4)).expect("path"),
            None
        );
        // Out-of-bounds queries are typed errors.
        assert!(matches!(
            session.distance(NodeId::new(n), NodeId::new(0)),
            Err(CoreError::UnknownNode { .. })
        ));
    }

    #[test]
    fn sharded_edge_fault_sessions_cover_cut_and_intra_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generate::connected_gnp(32, 0.2, generate::WeightKind::Unit, &mut rng);
        let builder = FtSpannerBuilder::new("edge-fault").faults(1).stretch(3.0);
        let sharded = ShardedArtifact::build(&g, &builder, &PartitionConfig::new(2).with_seed(5))
            .expect("sharded build succeeds");
        assert_eq!(sharded.fault_model(), FaultModel::Edge);
        let union = sharded.to_union_artifact().expect("union assembles");

        // One cut edge and one intra-shard edge, faulted in turn: the
        // sharded answers must match the union artifact bit for bit.
        let cut = sharded.cut_edges().next().expect("cuts exist");
        let intra = g
            .edges()
            .map(|(_, e)| e)
            .find(|e| sharded.part_of(e.u) == sharded.part_of(e.v))
            .expect("intra edge exists");
        for (a, b) in [(cut.u, cut.v), (intra.u, intra.v)] {
            let reference = union.under_edge_faults(&[(a, b)]).expect("opens");
            let mut session = sharded.under_edge_faults(&[(a, b)]).expect("opens");
            assert_eq!(session.fault_count(), 1);
            for u in (0..g.node_count()).step_by(3) {
                let want = reference.distances_from(NodeId::new(u)).expect("row");
                for (v, &expected) in want.iter().enumerate() {
                    let got = session
                        .distance(NodeId::new(u), NodeId::new(v))
                        .expect("distance");
                    assert_eq!(got, expected, "edge fault ({a:?},{b:?}), d({u},{v})");
                }
            }
        }

        // A non-edge is UnknownEdge even when both endpoints are valid.
        let missing = (0..g.node_count())
            .flat_map(|u| ((u + 1)..g.node_count()).map(move |v| (u, v)))
            .find(|&(u, v)| g.find_edge(NodeId::new(u), NodeId::new(v)).is_none())
            .expect("G(n, 0.2) is not complete");
        assert!(matches!(
            sharded.under_edge_faults(&[(NodeId::new(missing.0), NodeId::new(missing.1))]),
            Err(CoreError::UnknownEdge { u, v }) if (u, v) == missing
        ));
    }

    #[test]
    fn sharded_certificates_hold_and_report_exact_baselines() {
        let (g, sharded) = build_sharded(30, 0.2, 3, 17);
        let union = sharded.to_union_artifact().expect("union assembles");
        let faults = [NodeId::new(9)];
        let reference = union.under_faults(&faults).expect("opens");
        let mut session = sharded.under_faults(&faults).expect("opens");
        for u in (0..g.node_count()).step_by(2) {
            for v in (1..g.node_count()).step_by(3) {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                let got = session.stretch_certificate(u, v).expect("certificate");
                let want = reference.stretch_certificate(u, v).expect("certificate");
                assert_eq!(got.spanner_distance, want.spanner_distance);
                assert_eq!(got.baseline_distance, want.baseline_distance);
                assert_eq!(got.stretch, want.stretch);
                assert_eq!(got.bound, want.bound);
                assert!(got.holds(), "declared guarantee holds under faults");
            }
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_shards() {
        let (_, sharded) = build_sharded(24, 0.2, 2, 19);
        let shards: Vec<FtSpanner> = sharded.shards().to_vec();
        let assignment = sharded.assignment().to_vec();
        let cuts: Vec<CutEdge> = sharded.cut_edges().collect();

        // The pristine parts reassemble.
        assert!(
            ShardedArtifact::from_parts(shards.clone(), assignment.clone(), cuts.clone()).is_ok()
        );
        // No shards.
        assert!(ShardedArtifact::from_parts(Vec::new(), assignment.clone(), cuts.clone()).is_err());
        // Assignment naming a missing part.
        let mut bad = assignment.clone();
        bad[0] = 9;
        assert!(ShardedArtifact::from_parts(shards.clone(), bad, cuts.clone()).is_err());
        // Non-crossing cut edge.
        let mut bad_cuts = cuts.clone();
        let part0 = sharded.shard_members(0);
        bad_cuts.push(CutEdge {
            u: part0[0],
            v: part0[1],
            weight: 1.0,
        });
        assert!(ShardedArtifact::from_parts(shards.clone(), assignment.clone(), bad_cuts).is_err());
        // Duplicate cut edge.
        let mut dup = cuts.clone();
        dup.push(cuts[0]);
        assert!(ShardedArtifact::from_parts(shards.clone(), assignment.clone(), dup).is_err());
        // Negative cut weight.
        let mut neg = cuts.clone();
        neg[0].weight = -1.0;
        assert!(ShardedArtifact::from_parts(shards, assignment, neg).is_err());
    }

    #[test]
    fn cache_capacity_does_not_change_answers() {
        let (g, sharded) = build_sharded(28, 0.2, 2, 23);
        let mut cached = sharded
            .under_faults_with_capacity(&[NodeId::new(3)], 64)
            .expect("opens");
        let mut uncached = sharded
            .under_faults_with_capacity(&[NodeId::new(3)], 0)
            .expect("opens");
        for u in 0..g.node_count() {
            for v in (0..g.node_count()).step_by(4) {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                assert_eq!(
                    cached.distance(u, v).expect("distance"),
                    uncached.distance(u, v).expect("distance")
                );
            }
        }
        assert!(cached.cache_stats().hits > 0, "warm rows are reused");
        assert_eq!(uncached.cache_stats().hits, 0);
    }
}
