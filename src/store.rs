//! Directory-backed artifact persistence: the [`ArtifactStore`].
//!
//! A store is a plain directory of `.ftspan` files, one binary-serialized
//! [`FtSpanner`] per file (version-2 layout, see
//! [`FtSpanner::to_binary_v2_writer`]; version-1 files remain loadable); the
//! file stem is the artifact's serving name. Sharded artifacts persist as a
//! versioned text manifest `<name>.ftshard` plus one `.ftspan` file per
//! shard (`<name>.shard<i>.ftspan`). Build artifacts on a construction
//! machine, [`save`](ArtifactStore::save) /
//! [`save_sharded`](ArtifactStore::save_sharded) them, ship the directory,
//! and [`load_into`](ArtifactStore::load_into) an [`Engine`] at serving
//! startup — manifests register as sharded artifacts, and their shard pieces
//! are not double-registered as flat ones.

use crate::shard::{CutEdge, ShardedArtifact};
use crate::Engine;
use ftspan_core::serve::FtSpanner;
use ftspan_core::{CoreError, DeltaLog, Result};
use ftspan_graph::NodeId;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File extension of stored artifacts (without the dot).
pub const ARTIFACT_EXTENSION: &str = "ftspan";

/// File extension of sharded-artifact manifests (without the dot).
pub const SHARD_MANIFEST_EXTENSION: &str = "ftshard";

/// File extension of persisted edge-delta logs (without the dot).
pub const DELTA_LOG_EXTENSION: &str = "ftdelta";

/// A directory of binary `.ftspan` artifacts, addressed by name.
///
/// Names are file stems and restricted to `[A-Za-z0-9._-]` (no path
/// separators), so a store can never read or write outside its directory.
/// All I/O failures surface as typed [`CoreError::InvalidParameter`] values
/// carrying the offending path.
///
/// # Example
///
/// ```
/// use fault_tolerant_spanners::prelude::*;
/// use fault_tolerant_spanners::ArtifactStore;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let network = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng);
/// let artifact = FtSpannerBuilder::new("conversion")
///     .faults(1)
///     .build_artifact(&network)
///     .unwrap();
///
/// let dir = std::env::temp_dir().join(format!("ftspan-doc-{}", std::process::id()));
/// let store = ArtifactStore::open(&dir).unwrap();
/// store.save("backbone", &artifact).unwrap();
/// assert_eq!(store.names().unwrap(), vec!["backbone"]);
///
/// // Serving startup: load the whole directory into an engine.
/// let mut engine = Engine::new();
/// let loaded = store.load_into(&mut engine).unwrap();
/// assert_eq!(loaded, vec!["backbone"]);
/// let results = engine.run_batch(&[Query::distance(
///     "backbone",
///     vec![NodeId::new(3)],
///     NodeId::new(0),
///     NodeId::new(7),
/// )]);
/// assert!(results[0].is_ok());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if necessary) the store directory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot create artifact store at {}: {e}", dir.display()),
        })?;
        Ok(ArtifactStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn is_valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            && !name.starts_with('.')
    }

    fn path_of(&self, name: &str) -> Result<PathBuf> {
        if !Self::is_valid_name(name) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "invalid artifact name `{name}`: expected [A-Za-z0-9._-]+ not starting \
                     with a dot"
                ),
            });
        }
        Ok(self.dir.join(format!("{name}.{ARTIFACT_EXTENSION}")))
    }

    /// Writes `artifact` as `<name>.ftspan` (replacing any previous version)
    /// and returns the path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name or a write
    /// failure.
    pub fn save(&self, name: &str, artifact: &FtSpanner) -> Result<PathBuf> {
        let path = self.path_of(name)?;
        self.write_atomic(&path, |writer| artifact.to_binary_v2_writer(writer))?;
        Ok(path)
    }

    /// Writes `path` through a sibling temp file renamed into place: a crash
    /// or a failed write can then never truncate the previous good file or
    /// leave a partial one for the next cold load to trip over. (The
    /// `.tmp-*` extension keeps stragglers out of `names()`; the pid +
    /// counter makes the path unique per call, so concurrent saves of one
    /// name cannot interleave on a shared temp file.) The explicit flush
    /// matters too — artifacts are smaller than BufWriter's buffer, so Drop
    /// would do the real write and swallow a full disk.
    fn write_atomic(
        &self,
        path: &Path,
        write_body: impl FnOnce(&mut BufWriter<File>) -> std::io::Result<()>,
    ) -> Result<()> {
        static SAVE_COUNTER: AtomicU64 = AtomicU64::new(0);
        let file_name = path
            .file_name()
            .and_then(|f| f.to_str())
            .unwrap_or("artifact");
        let tmp = self.dir.join(format!(
            "{file_name}.tmp-{}-{}",
            std::process::id(),
            SAVE_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let write = (|| {
            let mut writer = BufWriter::new(File::create(&tmp)?);
            write_body(&mut writer)?;
            writer.flush()?;
            // Force the bytes to disk before renaming: journaling filesystems
            // may order the rename ahead of the data, and a power loss would
            // otherwise install a truncated file where the good one was.
            writer.get_ref().sync_all()
        })();
        if let Err(e) = write.and_then(|()| std::fs::rename(&tmp, path)) {
            std::fs::remove_file(&tmp).ok();
            return Err(CoreError::InvalidParameter {
                message: format!("cannot write {}: {e}", path.display()),
            });
        }
        Ok(())
    }

    /// Loads the named artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name, a missing
    /// file, or malformed artifact data.
    pub fn load(&self, name: &str) -> Result<FtSpanner> {
        let path = self.path_of(name)?;
        let file = File::open(&path).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot open {}: {e}", path.display()),
        })?;
        // Name the offending file in parse failures: a directory cold load
        // ([`ArtifactStore::load_into`]) surfaces the first corrupt artifact,
        // and without the path the operator can't tell which of dozens of
        // files to re-ship.
        FtSpanner::from_binary_reader(BufReader::new(file)).map_err(|e| {
            CoreError::InvalidParameter {
                message: format!("cannot parse artifact {}: {e}", path.display()),
            }
        })
    }

    /// The names of every stored artifact (`.ftspan` file stems), sorted.
    ///
    /// Only **addressable** stems are listed — ones [`ArtifactStore::load`]
    /// accepts. Files whose stems fall outside the name alphabet (editor
    /// temporaries like `.#backbone.ftspan`, stray copies with spaces) are
    /// ignored, so a cold [`ArtifactStore::load_into`] never trips over
    /// them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the directory cannot be
    /// read.
    pub fn names(&self) -> Result<Vec<String>> {
        self.stems_with_extension(ARTIFACT_EXTENSION)
    }

    fn stems_with_extension(&self, extension: &str) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot read artifact store {}: {e}", self.dir.display()),
        })?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CoreError::InvalidParameter {
                message: format!("cannot read artifact store {}: {e}", self.dir.display()),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(extension) {
                continue;
            }
            // A subdirectory named `*.ftspan` is not loadable; listing it
            // would make every cold `load_into` fail on EISDIR.
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if Self::is_valid_name(stem) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn manifest_path_of(&self, name: &str) -> Result<PathBuf> {
        if !Self::is_valid_name(name) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "invalid artifact name `{name}`: expected [A-Za-z0-9._-]+ not starting \
                     with a dot"
                ),
            });
        }
        Ok(self.dir.join(format!("{name}.{SHARD_MANIFEST_EXTENSION}")))
    }

    /// The store name of shard `i` of sharded artifact `name`.
    fn shard_stem(name: &str, i: usize) -> String {
        format!("{name}.shard{i}")
    }

    /// Writes a sharded artifact: one `.ftspan` file per shard
    /// (`<name>.shard<i>.ftspan`) plus the versioned text manifest
    /// `<name>.ftshard` carrying the vertex → part assignment and the cut
    /// edges. The manifest is written last, and atomically, so a readable
    /// manifest always references fully written shards. Returns the manifest
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name or a write
    /// failure.
    pub fn save_sharded(&self, name: &str, artifact: &ShardedArtifact) -> Result<PathBuf> {
        let path = self.manifest_path_of(name)?;
        for (i, shard) in artifact.shards().iter().enumerate() {
            self.save(&Self::shard_stem(name, i), shard)?;
        }
        self.write_atomic(&path, |writer| {
            writeln!(writer, "ftshard 1")?;
            writeln!(writer, "shards {}", artifact.shard_count())?;
            writeln!(writer, "nodes {}", artifact.node_count())?;
            writeln!(writer, "cuts {}", artifact.cut_edge_count())?;
            write!(writer, "assignment")?;
            for &p in artifact.assignment() {
                write!(writer, " {p}")?;
            }
            writeln!(writer)?;
            for c in artifact.cut_edges() {
                // `{:?}` prints the shortest exactly-round-tripping decimal,
                // so weights survive the text manifest bit for bit.
                writeln!(writer, "cut {} {} {:?}", c.u.index(), c.v.index(), c.weight)?;
            }
            writeln!(writer, "end")
        })?;
        Ok(path)
    }

    /// Loads the named sharded artifact from its manifest and shard files,
    /// revalidating the parts against each other
    /// ([`ShardedArtifact::from_parts`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name, a missing
    /// or malformed manifest (the error names the file), a missing or
    /// corrupt shard file, or mutually inconsistent parts.
    pub fn load_sharded(&self, name: &str) -> Result<ShardedArtifact> {
        let path = self.manifest_path_of(name)?;
        let text = std::fs::read_to_string(&path).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot open {}: {e}", path.display()),
        })?;
        let malformed = |what: &str| CoreError::InvalidParameter {
            message: format!("malformed {what} in shard manifest {}", path.display()),
        };

        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("ftshard 1") {
            return Err(malformed("header"));
        }
        let mut field = |key: &str| -> Result<String> {
            let line = lines.next().ok_or_else(|| malformed(key))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| malformed(key))
        };
        // Counts parse through the u32 id width so oversized values are
        // typed errors, not absurd allocations.
        let count = |what: &str, token: &str| -> Result<usize> {
            token
                .parse::<u32>()
                .map(|v| v as usize)
                .map_err(|_| malformed(what))
        };
        let shards = count("shard count", &field("shards")?)?;
        let nodes = count("node count", &field("nodes")?)?;
        let cut_count = count("cut count", &field("cuts")?)?;

        let assignment_line = field("assignment")?;
        let assignment = assignment_line
            .split_ascii_whitespace()
            .map(|t| t.parse::<u32>().map_err(|_| malformed("assignment entry")))
            .collect::<Result<Vec<u32>>>()?;
        if assignment.len() != nodes {
            return Err(malformed("assignment length"));
        }

        // The claimed count only sizes the first allocation up to a clamp;
        // real growth is driven by `cut` lines actually present, so a lying
        // `cuts` value cannot allocate past the clamp before the parse
        // fails. (Found by the `.ftshard` fuzz battery: a forged
        // `cuts 4294967295` previously requested ~100 GiB up front.)
        let mut cut_edges = Vec::with_capacity(cut_count.min(1024));
        for _ in 0..cut_count {
            let line = field("cut")?;
            let mut tokens = line.split_ascii_whitespace();
            let mut endpoint = || -> Result<NodeId> {
                tokens
                    .next()
                    .ok_or_else(|| malformed("cut edge"))
                    .and_then(|t| count("cut endpoint", t).map(NodeId::new))
            };
            let (u, v) = (endpoint()?, endpoint()?);
            let weight = tokens
                .next()
                .and_then(|t| t.parse::<f64>().ok())
                .ok_or_else(|| malformed("cut weight"))?;
            if tokens.next().is_some() {
                return Err(malformed("cut edge"));
            }
            cut_edges.push(CutEdge { u, v, weight });
        }
        if lines.next().map(str::trim) != Some("end") {
            return Err(malformed("trailer"));
        }
        // Anything after `end` is smuggled content, not formatting slack.
        // (Found by the `.ftshard` fuzz battery: trailing garbage was
        // silently accepted.)
        if lines.next().is_some() {
            return Err(malformed("trailer"));
        }

        let parts = (0..shards)
            .map(|i| self.load(&Self::shard_stem(name, i)))
            .collect::<Result<Vec<_>>>()?;
        let artifact = ShardedArtifact::from_parts(parts, assignment, cut_edges)?;
        if artifact.node_count() != nodes {
            return Err(malformed("node count"));
        }
        Ok(artifact)
    }

    /// The names of every stored sharded artifact (`.ftshard` manifest
    /// stems), sorted. Same addressability rules as
    /// [`ArtifactStore::names`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the directory cannot be
    /// read.
    pub fn sharded_names(&self) -> Result<Vec<String>> {
        self.stems_with_extension(SHARD_MANIFEST_EXTENSION)
    }

    fn delta_log_path_of(&self, name: &str) -> Result<PathBuf> {
        if !Self::is_valid_name(name) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "invalid artifact name `{name}`: expected [A-Za-z0-9._-]+ not starting \
                     with a dot"
                ),
            });
        }
        Ok(self.dir.join(format!("{name}.{DELTA_LOG_EXTENSION}")))
    }

    /// Writes `log` as `<name>.ftdelta` (replacing any previous version)
    /// through the same crash-safe temp-file-and-rename discipline as
    /// [`save`](ArtifactStore::save), and returns the path. Persisting the
    /// delta log next to the base artifact lets a restart replay churn it
    /// missed: load the base, [`DeltaLog::replay`] the log, rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name or a write
    /// failure.
    pub fn save_delta_log(&self, name: &str, log: &DeltaLog) -> Result<PathBuf> {
        let path = self.delta_log_path_of(name)?;
        self.write_atomic(&path, |writer| log.to_binary_writer(writer))?;
        Ok(path)
    }

    /// Loads the named delta log.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name, a missing
    /// file, or malformed log data (the error names the file).
    pub fn load_delta_log(&self, name: &str) -> Result<DeltaLog> {
        let path = self.delta_log_path_of(name)?;
        let file = File::open(&path).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot open {}: {e}", path.display()),
        })?;
        DeltaLog::from_binary_reader(BufReader::new(file)).map_err(|e| {
            CoreError::InvalidParameter {
                message: format!("cannot parse delta log {}: {e}", path.display()),
            }
        })
    }

    /// The names of every stored delta log (`.ftdelta` file stems), sorted.
    /// Same addressability rules as [`ArtifactStore::names`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the directory cannot be
    /// read.
    pub fn delta_log_names(&self) -> Result<Vec<String>> {
        self.stems_with_extension(DELTA_LOG_EXTENSION)
    }

    /// Loads **every** stored artifact and registers each in `engine` under
    /// its file stem, returning the sorted names that were registered.
    ///
    /// Shard manifests register as sharded artifacts; the `.ftspan` pieces a
    /// manifest references are *not* additionally registered as flat
    /// artifacts, so the engine's catalogue matches what was saved.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on the first unreadable or
    /// malformed file; artifacts loaded before the failure stay registered.
    pub fn load_into(&self, engine: &mut Engine) -> Result<Vec<String>> {
        let sharded = self.sharded_names()?;
        let mut claimed: BTreeSet<String> = BTreeSet::new();
        for name in &sharded {
            let artifact = self.load_sharded(name)?;
            for i in 0..artifact.shard_count() {
                claimed.insert(Self::shard_stem(name, i));
            }
            engine.register_sharded(name, artifact);
        }
        let mut registered = sharded;
        for name in self.names()? {
            if claimed.contains(&name) {
                continue;
            }
            let artifact = self.load(&name)?;
            engine.register(&name, artifact);
            registered.push(name);
        }
        registered.sort_unstable();
        Ok(registered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FtSpannerBuilder, Query};
    use ftspan_graph::{generate, NodeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("ftspan-store-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ArtifactStore::open(&dir).unwrap()
    }

    fn artifact(seed: u64) -> FtSpanner {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(16, 0.3, generate::WeightKind::Unit, &mut rng);
        FtSpannerBuilder::new("conversion")
            .faults(1)
            .build_artifact(&g)
            .unwrap()
    }

    #[test]
    fn save_load_round_trips_and_fills_an_engine() {
        let store = temp_store("roundtrip");
        let a = artifact(1);
        let b = artifact(2);
        store.save("alpha", &a).unwrap();
        store.save("beta", &b).unwrap();
        assert_eq!(store.names().unwrap(), vec!["alpha", "beta"]);
        assert_eq!(store.load("alpha").unwrap(), a);

        let mut engine = Engine::new();
        let loaded = store.load_into(&mut engine).unwrap();
        assert_eq!(loaded, vec!["alpha", "beta"]);
        assert_eq!(engine.names(), vec!["alpha", "beta"]);
        let results = engine.run_batch(&[
            Query::distance(
                "alpha",
                vec![NodeId::new(1)],
                NodeId::new(0),
                NodeId::new(5),
            ),
            Query::distance("beta", vec![], NodeId::new(2), NodeId::new(3)),
        ]);
        assert!(results.iter().all(|r| r.is_ok()));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp_files() {
        let store = temp_store("replace");
        let first = artifact(10);
        let second = artifact(11);
        assert_ne!(first, second);
        store.save("backbone", &first).unwrap();
        store.save("backbone", &second).unwrap();
        assert_eq!(store.load("backbone").unwrap(), second);
        // The temp file renamed over the target must not linger, and the
        // listing must only ever see the finished artifact.
        let stray: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|f| !f.ends_with(".ftspan"))
            .collect();
        assert!(stray.is_empty(), "leftover files: {stray:?}");
        assert_eq!(store.names().unwrap(), vec!["backbone"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn invalid_names_and_missing_files_are_typed_errors() {
        let store = temp_store("errors");
        let a = artifact(3);
        for bad in ["", "../escape", "a/b", ".hidden", "nul\0byte"] {
            assert!(store.save(bad, &a).is_err(), "accepted name {bad:?}");
            assert!(store.load(bad).is_err());
        }
        assert!(matches!(
            store.load("never-saved"),
            Err(CoreError::InvalidParameter { .. })
        ));
        // A corrupt file is a typed error too, and non-.ftspan files are
        // ignored by listing.
        std::fs::write(store.dir().join("junk.ftspan"), b"not an artifact").unwrap();
        std::fs::write(store.dir().join("README.txt"), b"ignore me").unwrap();
        assert!(store.load("junk").is_err());
        assert_eq!(store.names().unwrap(), vec!["junk"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_artifact_errors_name_the_offending_file() {
        // A corrupt artifact in a directory cold load must say *which* file
        // failed — both through load() and through load_into(), whose error
        // is what a serving startup actually sees.
        let store = temp_store("corrupt-path");
        store.save("good", &artifact(5)).unwrap();
        std::fs::write(store.dir().join("rotten.ftspan"), b"FTSPgarbage").unwrap();
        for err in [
            store.load("rotten").unwrap_err(),
            store.load_into(&mut Engine::new()).unwrap_err(),
        ] {
            let message = err.to_string();
            assert!(
                message.contains("rotten.ftspan"),
                "error does not name the corrupt file: {message}"
            );
        }
        // Artifacts loaded before the failure stay registered.
        let mut engine = Engine::new();
        assert!(store.load_into(&mut engine).is_err());
        assert_eq!(engine.names(), vec!["good"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    fn sharded_artifact(seed: u64) -> ShardedArtifact {
        use ftspan_graph::partition::PartitionConfig;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(28, 0.2, generate::WeightKind::Unit, &mut rng);
        ShardedArtifact::build(
            &g,
            &FtSpannerBuilder::new("conversion").faults(1).stretch(3.0),
            &PartitionConfig::new(2).with_seed(seed),
        )
        .unwrap()
    }

    #[test]
    fn sharded_save_load_round_trips_through_manifest_and_engine() {
        let store = temp_store("sharded");
        let sharded = sharded_artifact(21);
        store.save_sharded("mesh", &sharded).unwrap();
        store.save("flat", &artifact(22)).unwrap();
        assert_eq!(store.sharded_names().unwrap(), vec!["mesh"]);
        // The shard pieces are ordinary artifacts on disk...
        assert_eq!(
            store.names().unwrap(),
            vec!["flat", "mesh.shard0", "mesh.shard1"]
        );

        let loaded = store.load_sharded("mesh").unwrap();
        assert_eq!(loaded.shard_count(), sharded.shard_count());
        assert_eq!(loaded.assignment(), sharded.assignment());
        assert_eq!(
            loaded.cut_edges().collect::<Vec<_>>(),
            sharded.cut_edges().collect::<Vec<_>>()
        );
        assert_eq!(loaded.shards(), sharded.shards());

        // ...but a cold engine load registers the manifest name only, not
        // the pieces, and the sharded artifact serves queries.
        let mut engine = Engine::new();
        let registered = store.load_into(&mut engine).unwrap();
        assert_eq!(registered, vec!["flat", "mesh"]);
        assert_eq!(engine.names(), vec!["flat", "mesh"]);
        assert_eq!(
            engine.artifact_summary("mesh").unwrap().shards,
            Some(sharded.shard_count())
        );
        let results = engine.run_batch(&[Query::distance(
            "mesh",
            vec![NodeId::new(3)],
            NodeId::new(0),
            NodeId::new(11),
        )]);
        assert!(results[0].is_ok());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_shard_manifests_are_typed_errors_naming_the_file() {
        let store = temp_store("sharded-corrupt");
        let sharded = sharded_artifact(23);
        store.save_sharded("mesh", &sharded).unwrap();

        // Truncate the manifest: load_sharded and load_into both fail with
        // an error naming the file.
        let manifest = store.dir().join("mesh.ftshard");
        let good = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, &good[..good.len() / 2]).unwrap();
        for err in [
            store.load_sharded("mesh").unwrap_err(),
            store.load_into(&mut Engine::new()).unwrap_err(),
        ] {
            assert!(
                err.to_string().contains("mesh.ftshard"),
                "error does not name the manifest: {err}"
            );
        }

        // A manifest referencing a missing shard file is typed too.
        std::fs::write(&manifest, &good).unwrap();
        std::fs::remove_file(store.dir().join("mesh.shard1.ftspan")).unwrap();
        assert!(store
            .load_sharded("mesh")
            .unwrap_err()
            .to_string()
            .contains("mesh.shard1.ftspan"));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn delta_log_save_load_round_trips_and_replays() {
        use ftspan_core::EdgeDelta;
        let store = temp_store("deltalog");
        let mut log = DeltaLog::new();
        log.append(EdgeDelta::Insert {
            u: NodeId::new(0),
            v: NodeId::new(9),
            weight: 2.5,
        });
        log.append(EdgeDelta::Delete {
            u: NodeId::new(0),
            v: NodeId::new(9),
        });
        log.append(EdgeDelta::Insert {
            u: NodeId::new(2),
            v: NodeId::new(7),
            weight: 0.75,
        });
        store.save_delta_log("backbone", &log).unwrap();
        assert_eq!(store.delta_log_names().unwrap(), vec!["backbone"]);
        // Delta logs do not pollute the artifact listing (and vice versa).
        assert_eq!(store.names().unwrap(), Vec::<String>::new());

        let loaded = store.load_delta_log("backbone").unwrap();
        assert_eq!(loaded.records(), log.records());
        assert_eq!(loaded.last_seq(), Some(3));

        // The reloaded log replays on a base graph exactly like the original.
        let g = generate::path(10);
        assert_eq!(loaded.replay(&g).unwrap(), log.replay(&g).unwrap());

        // Corrupt bytes are a typed error naming the file.
        std::fs::write(store.dir().join("rotten.ftdelta"), b"FTDLgarbage").unwrap();
        let err = store.load_delta_log("rotten").unwrap_err();
        assert!(
            err.to_string().contains("rotten.ftdelta"),
            "error does not name the corrupt file: {err}"
        );
        assert!(store.load_delta_log("never-saved").is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn unaddressable_stems_are_ignored_not_fatal() {
        // Editor temporaries and stray copies with out-of-alphabet stems
        // must not break a cold load: names() lists only what load() can
        // address, so load_into() skips them.
        let store = temp_store("stems");
        store.save("good", &artifact(4)).unwrap();
        std::fs::write(store.dir().join(".#backbone.ftspan"), b"editor temp").unwrap();
        std::fs::write(store.dir().join("my backup.ftspan"), b"stray copy").unwrap();
        std::fs::create_dir(store.dir().join("backups.ftspan")).unwrap();
        assert_eq!(store.names().unwrap(), vec!["good"]);
        let mut engine = Engine::new();
        assert_eq!(store.load_into(&mut engine).unwrap(), vec!["good"]);
        assert_eq!(engine.names(), vec!["good"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
