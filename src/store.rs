//! Directory-backed artifact persistence: the [`ArtifactStore`].
//!
//! A store is a plain directory of `.ftspan` files, one binary-serialized
//! [`FtSpanner`] per file (see [`FtSpanner::to_binary_writer`]); the file
//! stem is the artifact's serving name. Build artifacts on a construction
//! machine, [`save`](ArtifactStore::save) them, ship the directory, and
//! [`load_into`](ArtifactStore::load_into) an [`Engine`] at serving startup.

use crate::Engine;
use ftspan_core::serve::FtSpanner;
use ftspan_core::{CoreError, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File extension of stored artifacts (without the dot).
pub const ARTIFACT_EXTENSION: &str = "ftspan";

/// A directory of binary `.ftspan` artifacts, addressed by name.
///
/// Names are file stems and restricted to `[A-Za-z0-9._-]` (no path
/// separators), so a store can never read or write outside its directory.
/// All I/O failures surface as typed [`CoreError::InvalidParameter`] values
/// carrying the offending path.
///
/// # Example
///
/// ```
/// use fault_tolerant_spanners::prelude::*;
/// use fault_tolerant_spanners::ArtifactStore;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let network = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng);
/// let artifact = FtSpannerBuilder::new("conversion")
///     .faults(1)
///     .build_artifact(&network)
///     .unwrap();
///
/// let dir = std::env::temp_dir().join(format!("ftspan-doc-{}", std::process::id()));
/// let store = ArtifactStore::open(&dir).unwrap();
/// store.save("backbone", &artifact).unwrap();
/// assert_eq!(store.names().unwrap(), vec!["backbone"]);
///
/// // Serving startup: load the whole directory into an engine.
/// let mut engine = Engine::new();
/// let loaded = store.load_into(&mut engine).unwrap();
/// assert_eq!(loaded, vec!["backbone"]);
/// let results = engine.run_batch(&[Query::distance(
///     "backbone",
///     vec![NodeId::new(3)],
///     NodeId::new(0),
///     NodeId::new(7),
/// )]);
/// assert!(results[0].is_ok());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if necessary) the store directory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot create artifact store at {}: {e}", dir.display()),
        })?;
        Ok(ArtifactStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn is_valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            && !name.starts_with('.')
    }

    fn path_of(&self, name: &str) -> Result<PathBuf> {
        if !Self::is_valid_name(name) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "invalid artifact name `{name}`: expected [A-Za-z0-9._-]+ not starting \
                     with a dot"
                ),
            });
        }
        Ok(self.dir.join(format!("{name}.{ARTIFACT_EXTENSION}")))
    }

    /// Writes `artifact` as `<name>.ftspan` (replacing any previous version)
    /// and returns the path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name or a write
    /// failure.
    pub fn save(&self, name: &str, artifact: &FtSpanner) -> Result<PathBuf> {
        let path = self.path_of(name)?;
        // Write to a sibling temp file and rename into place: a crash or a
        // failed write can then never truncate the previous good artifact or
        // leave a partial `.ftspan` for the next cold load to trip over.
        // (The `.tmp-*` extension keeps stragglers out of `names()`; the
        // pid + counter makes the path unique per call, so concurrent saves
        // of one name cannot interleave on a shared temp file.) The explicit
        // flush matters too — artifacts are smaller than BufWriter's buffer,
        // so Drop would do the real write and swallow a full disk.
        static SAVE_COUNTER: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{name}.{ARTIFACT_EXTENSION}.tmp-{}-{}",
            std::process::id(),
            SAVE_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let write = (|| {
            let mut writer = BufWriter::new(File::create(&tmp)?);
            artifact.to_binary_writer(&mut writer)?;
            writer.flush()?;
            // Force the bytes to disk before renaming: journaling filesystems
            // may order the rename ahead of the data, and a power loss would
            // otherwise install a truncated file where the good one was.
            writer.get_ref().sync_all()
        })();
        if let Err(e) = write.and_then(|()| std::fs::rename(&tmp, &path)) {
            std::fs::remove_file(&tmp).ok();
            return Err(CoreError::InvalidParameter {
                message: format!("cannot write {}: {e}", path.display()),
            });
        }
        Ok(path)
    }

    /// Loads the named artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an invalid name, a missing
    /// file, or malformed artifact data.
    pub fn load(&self, name: &str) -> Result<FtSpanner> {
        let path = self.path_of(name)?;
        let file = File::open(&path).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot open {}: {e}", path.display()),
        })?;
        // Name the offending file in parse failures: a directory cold load
        // ([`ArtifactStore::load_into`]) surfaces the first corrupt artifact,
        // and without the path the operator can't tell which of dozens of
        // files to re-ship.
        FtSpanner::from_binary_reader(BufReader::new(file)).map_err(|e| {
            CoreError::InvalidParameter {
                message: format!("cannot parse artifact {}: {e}", path.display()),
            }
        })
    }

    /// The names of every stored artifact (`.ftspan` file stems), sorted.
    ///
    /// Only **addressable** stems are listed — ones [`ArtifactStore::load`]
    /// accepts. Files whose stems fall outside the name alphabet (editor
    /// temporaries like `.#backbone.ftspan`, stray copies with spaces) are
    /// ignored, so a cold [`ArtifactStore::load_into`] never trips over
    /// them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the directory cannot be
    /// read.
    pub fn names(&self) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| CoreError::InvalidParameter {
            message: format!("cannot read artifact store {}: {e}", self.dir.display()),
        })?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CoreError::InvalidParameter {
                message: format!("cannot read artifact store {}: {e}", self.dir.display()),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ARTIFACT_EXTENSION) {
                continue;
            }
            // A subdirectory named `*.ftspan` is not loadable; listing it
            // would make every cold `load_into` fail on EISDIR.
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if Self::is_valid_name(stem) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    /// Loads **every** stored artifact and registers each in `engine` under
    /// its file stem, returning the sorted names that were loaded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on the first unreadable or
    /// malformed file; artifacts loaded before the failure stay registered.
    pub fn load_into(&self, engine: &mut Engine) -> Result<Vec<String>> {
        let names = self.names()?;
        for name in &names {
            let artifact = self.load(name)?;
            engine.register(name, artifact);
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FtSpannerBuilder, Query};
    use ftspan_graph::{generate, NodeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("ftspan-store-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ArtifactStore::open(&dir).unwrap()
    }

    fn artifact(seed: u64) -> FtSpanner {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(16, 0.3, generate::WeightKind::Unit, &mut rng);
        FtSpannerBuilder::new("conversion")
            .faults(1)
            .build_artifact(&g)
            .unwrap()
    }

    #[test]
    fn save_load_round_trips_and_fills_an_engine() {
        let store = temp_store("roundtrip");
        let a = artifact(1);
        let b = artifact(2);
        store.save("alpha", &a).unwrap();
        store.save("beta", &b).unwrap();
        assert_eq!(store.names().unwrap(), vec!["alpha", "beta"]);
        assert_eq!(store.load("alpha").unwrap(), a);

        let mut engine = Engine::new();
        let loaded = store.load_into(&mut engine).unwrap();
        assert_eq!(loaded, vec!["alpha", "beta"]);
        assert_eq!(engine.names(), vec!["alpha", "beta"]);
        let results = engine.run_batch(&[
            Query::distance(
                "alpha",
                vec![NodeId::new(1)],
                NodeId::new(0),
                NodeId::new(5),
            ),
            Query::distance("beta", vec![], NodeId::new(2), NodeId::new(3)),
        ]);
        assert!(results.iter().all(|r| r.is_ok()));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp_files() {
        let store = temp_store("replace");
        let first = artifact(10);
        let second = artifact(11);
        assert_ne!(first, second);
        store.save("backbone", &first).unwrap();
        store.save("backbone", &second).unwrap();
        assert_eq!(store.load("backbone").unwrap(), second);
        // The temp file renamed over the target must not linger, and the
        // listing must only ever see the finished artifact.
        let stray: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|f| !f.ends_with(".ftspan"))
            .collect();
        assert!(stray.is_empty(), "leftover files: {stray:?}");
        assert_eq!(store.names().unwrap(), vec!["backbone"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn invalid_names_and_missing_files_are_typed_errors() {
        let store = temp_store("errors");
        let a = artifact(3);
        for bad in ["", "../escape", "a/b", ".hidden", "nul\0byte"] {
            assert!(store.save(bad, &a).is_err(), "accepted name {bad:?}");
            assert!(store.load(bad).is_err());
        }
        assert!(matches!(
            store.load("never-saved"),
            Err(CoreError::InvalidParameter { .. })
        ));
        // A corrupt file is a typed error too, and non-.ftspan files are
        // ignored by listing.
        std::fs::write(store.dir().join("junk.ftspan"), b"not an artifact").unwrap();
        std::fs::write(store.dir().join("README.txt"), b"ignore me").unwrap();
        assert!(store.load("junk").is_err());
        assert_eq!(store.names().unwrap(), vec!["junk"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_artifact_errors_name_the_offending_file() {
        // A corrupt artifact in a directory cold load must say *which* file
        // failed — both through load() and through load_into(), whose error
        // is what a serving startup actually sees.
        let store = temp_store("corrupt-path");
        store.save("good", &artifact(5)).unwrap();
        std::fs::write(store.dir().join("rotten.ftspan"), b"FTSPgarbage").unwrap();
        for err in [
            store.load("rotten").unwrap_err(),
            store.load_into(&mut Engine::new()).unwrap_err(),
        ] {
            let message = err.to_string();
            assert!(
                message.contains("rotten.ftspan"),
                "error does not name the corrupt file: {message}"
            );
        }
        // Artifacts loaded before the failure stay registered.
        let mut engine = Engine::new();
        assert!(store.load_into(&mut engine).is_err());
        assert_eq!(engine.names(), vec!["good"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn unaddressable_stems_are_ignored_not_fatal() {
        // Editor temporaries and stray copies with out-of-alphabet stems
        // must not break a cold load: names() lists only what load() can
        // address, so load_into() skips them.
        let store = temp_store("stems");
        store.save("good", &artifact(4)).unwrap();
        std::fs::write(store.dir().join(".#backbone.ftspan"), b"editor temp").unwrap();
        std::fs::write(store.dir().join("my backup.ftspan"), b"stray copy").unwrap();
        std::fs::create_dir(store.dir().join("backups.ftspan")).unwrap();
        assert_eq!(store.names().unwrap(), vec!["good"]);
        let mut engine = Engine::new();
        assert_eq!(store.load_into(&mut engine).unwrap(), vec!["good"]);
        assert_eq!(engine.names(), vec!["good"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
