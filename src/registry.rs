//! The workspace-wide algorithm registry.

use ftspan_core::{FtSpannerAlgorithm, Registry};
use std::sync::OnceLock;

/// The full registry of fault-tolerant spanner constructions: the
/// centralized algorithms of `ftspan-core` plus the distributed (LOCAL-model)
/// algorithms of `ftspan-local`. Algorithms are stateless descriptors, so the
/// registry is built once per process and shared.
///
/// Registered names (see the README for the theorem table):
///
/// | name | paper result |
/// |------|--------------|
/// | `conversion` | Theorem 2.1 (vertex faults; edge faults via the request's fault model) |
/// | `corollary-2.2` | Corollary 2.2 |
/// | `adaptive` | Theorem 2.1 with a verification-battery stopping rule |
/// | `edge-fault` | Theorem 2.1, edge-fault extension |
/// | `clpr09` | CLPR09-style union-over-fault-sets baseline |
/// | `two-spanner-lp` | Theorem 3.3 |
/// | `two-spanner-greedy` | Lemma 3.1 greedy cover heuristic |
/// | `two-spanner-lll` | Theorem 3.4 |
/// | `dk10` | DK10 baseline |
/// | `distributed-conversion` | Theorem 2.3 / Corollary 2.4 |
/// | `distributed-two-spanner` | Theorem 3.9 / Algorithm 2 |
///
/// # Example
///
/// ```
/// let registry = fault_tolerant_spanners::registry();
/// assert!(registry.get("conversion").is_some());
/// assert_eq!(registry.len(), 11);
/// for algorithm in registry.iter() {
///     println!("{:<24} {:<12} {}", algorithm.name(), algorithm.reference(), algorithm.summary());
/// }
/// ```
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut algorithms: Vec<Box<dyn FtSpannerAlgorithm>> =
            ftspan_core::algorithms::core_algorithms();
        algorithms.extend(ftspan_local::algorithms::local_algorithms());
        Registry::from_algorithms(algorithms)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_construction_once() {
        let registry = registry();
        let names = registry.names();
        assert_eq!(names.len(), 11);
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate registry names");
        for name in [
            "conversion",
            "corollary-2.2",
            "adaptive",
            "edge-fault",
            "clpr09",
            "two-spanner-lp",
            "two-spanner-greedy",
            "two-spanner-lll",
            "dk10",
            "distributed-conversion",
            "distributed-two-spanner",
        ] {
            assert!(registry.get(name).is_some(), "`{name}` not registered");
        }
    }
}
