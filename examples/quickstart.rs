//! Quickstart: build a fault-tolerant spanner of a random network and watch
//! it survive failures.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2011);

    // A random 60-node network with unit-length links.
    let n = 60;
    let network = generate::connected_gnp(n, 0.15, generate::WeightKind::Unit, &mut rng);
    println!(
        "network: {} nodes, {} links",
        network.node_count(),
        network.edge_count()
    );

    // Corollary 2.2: convert the greedy 3-spanner into a 2-fault-tolerant one.
    let faults = 2;
    let stretch = 3.0;
    let result = FtSpannerBuilder::new("corollary-2.2")
        .faults(faults)
        .stretch(stretch)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("corollary-2.2 is registered and the input is undirected");
    println!(
        "{}: {} edges ({} iterations of the conversion, {:.1}% of the input kept, {:?})",
        result.provenance,
        result.size(),
        result.iterations,
        100.0 * result.size() as f64 / network.edge_count() as f64,
        result.elapsed,
    );
    let spanner = result.edge_set().expect("undirected construction");

    // Compare with the plain (non-fault-tolerant) greedy spanner.
    let plain = GreedySpanner::new(stretch).build(&network, &mut rng);
    println!("plain 3-spanner for reference: {} edges", plain.len());

    // Verify fault tolerance against every single- and double-failure.
    let report = verify::verify_fault_tolerance_exhaustive(&network, spanner, stretch, faults);
    println!(
        "verification: {} fault sets checked, worst stretch {:.3}, valid = {}",
        report.checked,
        report.worst_stretch,
        report.is_valid()
    );

    // Knock out the two busiest hubs and measure the stretch that remains.
    let hubs = faults::high_degree_faults(&network, faults);
    let stretch_after = verify::max_stretch_under_faults(&network, spanner, &hubs);
    println!(
        "after failing the {} busiest hubs {:?}: worst surviving stretch {:.3}",
        faults,
        hubs.nodes(),
        stretch_after
    );
    assert!(stretch_after <= stretch + 1e-9);
}
