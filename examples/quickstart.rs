//! Quickstart: build a fault-tolerant spanner of a random network once, then
//! *query* it under failures through fault-scoped sessions.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2011);

    // A random 60-node network with unit-length links.
    let n = 60;
    let network = generate::connected_gnp(n, 0.15, generate::WeightKind::Unit, &mut rng);
    println!(
        "network: {} nodes, {} links",
        network.node_count(),
        network.edge_count()
    );

    // Corollary 2.2: convert the greedy 3-spanner into a 2-fault-tolerant
    // one, promoted straight to a queryable artifact.
    let faults = 2;
    let stretch = 3.0;
    let artifact = FtSpannerBuilder::new("corollary-2.2")
        .faults(faults)
        .stretch(stretch)
        .build_artifact(&network)
        .expect("corollary-2.2 is registered and the input is undirected");
    println!(
        "{}: {} edges ({:.1}% of the input kept), guarantee: stretch {} under {} {} faults",
        artifact.provenance(),
        artifact.spanner_edge_count(),
        100.0 * artifact.spanner_edge_count() as f64 / network.edge_count() as f64,
        artifact.stretch(),
        artifact.fault_budget(),
        artifact.fault_model(),
    );

    // Compare with the plain (non-fault-tolerant) greedy spanner.
    let plain = GreedySpanner::new(stretch).build(&network, &mut rng);
    println!("plain 3-spanner for reference: {} edges", plain.len());

    // Verify fault tolerance against every single- and double-failure: one
    // session per fault set, no subgraphs re-derived by hand.
    let mut checked = 0usize;
    let mut worst: f64 = 1.0;
    let mut valid = true;
    for fault_set in faults::enumerate_fault_sets(n, faults) {
        let session = artifact
            .under_faults(fault_set.nodes())
            .expect("enumerated fault sets respect the budget");
        let s = session.max_stretch();
        worst = worst.max(s);
        valid &= s <= stretch + 1e-9;
        checked += 1;
    }
    println!(
        "verification: {checked} fault sets checked, worst stretch {worst:.3}, valid = {valid}"
    );

    // Knock out the two busiest hubs and query what remains.
    let hubs = faults::high_degree_faults(&network, faults);
    let session = artifact
        .under_faults(hubs.nodes())
        .expect("two hub faults are within the budget");
    println!(
        "after failing the {} busiest hubs {:?}: worst surviving stretch {:.3}",
        faults,
        hubs.nodes(),
        session.max_stretch()
    );
    assert!(session.is_within_guarantee());

    // Sessions answer point queries too: pick the farthest surviving pair
    // and show the certificate with its witnessing path.
    let u = NodeId::new(0);
    let mut far = u;
    let mut far_dist = 0.0;
    for (v, d) in session.distances_from(u).unwrap().iter().enumerate() {
        if d.is_finite() && *d > far_dist {
            far = NodeId::new(v);
            far_dist = *d;
        }
    }
    let cert = session.stretch_certificate(u, far).unwrap();
    let hops = cert.path.as_ref().map(|p| p.len() - 1).unwrap_or(0);
    println!(
        "sample query {u} -> {far}: spanner distance {:.0} vs baseline {:.0} \
         (stretch {:.2} <= {}), surviving path of {hops} hops",
        cert.spanner_distance, cert.baseline_distance, cert.stretch, cert.bound,
    );
    assert!(cert.holds());
}
