//! Spanner zoo: every construction in the library run on the same network,
//! with size, weight, lightness and stretch-distribution statistics side by
//! side.
//!
//! This is the "which spanner should I use?" tour: the classic black boxes
//! (greedy, Baswana–Sen, Thorup–Zwick, ball-carving clusters), the
//! fault-tolerant conversion built on each of them, and the adaptive variant
//! that stops as soon as verification passes.
//!
//! Run with:
//!
//! ```text
//! cargo run --example spanner_zoo
//! ```

use fault_tolerant_spanners::prelude::*;
use ftspan_spanners::SpannerStats;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn describe(name: &str, graph: &Graph, spanner: &EdgeSet, stretch: f64) {
    let basic = SpannerStats::collect(graph, spanner, stretch);
    let distribution = stats::stretch_stats(graph, spanner).expect("spanner matches the graph");
    let light = tree::lightness(graph, spanner).expect("spanner matches the graph");
    println!(
        "{name:<28} edges {:>5}  weight {:>8.1}  lightness {:>5.2}  \
         max-stretch {:>5.2}  mean-stretch {:>4.2}  exact {:>5.1}%",
        basic.spanner_edges,
        basic.spanner_weight,
        light,
        distribution.max,
        distribution.mean,
        100.0 * distribution.fraction_exact,
    );
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    // A weighted random geometric network: the classic "sensors on a field"
    // workload that motivates spanners in the first place.
    let n = 120;
    let network = generate::random_geometric(n, 0.22, generate::WeightKind::Euclidean, &mut rng);
    let cc = components::connected_components(&network);
    println!(
        "network: {} nodes, {} edges, {} component(s), max degree {}, MST weight {:.1}\n",
        network.node_count(),
        network.edge_count(),
        cc.count(),
        network.max_degree(),
        tree::mst_weight(&network),
    );

    println!("-- classic (non-fault-tolerant) spanners, stretch 3 --");
    let greedy = GreedySpanner::new(3.0).build(&network, &mut rng);
    describe("greedy (Althofer et al.)", &network, &greedy, 3.0);
    let bs = BaswanaSenSpanner::new(2).build(&network, &mut rng);
    describe("Baswana-Sen", &network, &bs, 3.0);
    let tz = ThorupZwickSpanner::new(2).build(&network, &mut rng);
    describe("Thorup-Zwick", &network, &tz, 3.0);
    let cluster = ClusterSpanner::for_stretch(3).build(&network, &mut rng);
    describe("cluster (ball carving)", &network, &cluster, 3.0);
    let mst = tree::minimum_spanning_forest(&network);
    describe("minimum spanning forest", &network, &mst, f64::INFINITY);

    println!("\n-- 1-fault-tolerant 3-spanners (Theorem 2.1 conversion) --");
    for (label, result) in [
        (
            "conversion over greedy",
            FaultTolerantConverter::new(ConversionParams::new(1).with_scale(0.5)).build(
                &network,
                &GreedySpanner::new(3.0),
                &mut rng,
            ),
        ),
        (
            "conversion over Thorup-Zwick",
            FaultTolerantConverter::new(ConversionParams::new(1).with_scale(0.5)).build(
                &network,
                &ThorupZwickSpanner::new(2),
                &mut rng,
            ),
        ),
    ] {
        describe(label, &network, &result.edges, 3.0);
        let check = verify::verify_fault_tolerance_sampled(&network, &result.edges, 3.0, 1, 25, &mut rng);
        println!(
            "{:>28} sampled verification: {} fault sets, worst stretch {:.2}, valid = {}",
            "", check.checked, check.worst_stretch, check.is_valid()
        );
    }

    println!("\n-- adaptive conversion (stops when verification passes) --");
    let config = AdaptiveConfig::new(1, network.node_count());
    let adaptive = adaptive_fault_tolerant_spanner(&network, &GreedySpanner::new(3.0), &config, &mut rng);
    describe("adaptive conversion", &network, &adaptive.edges, 3.0);
    println!(
        "{:>28} used {} of {} iterations ({:.0}% of the theorem budget), verified = {}",
        "",
        adaptive.iterations,
        adaptive.theorem_iterations,
        100.0 * adaptive.budget_fraction(),
        adaptive.verified
    );

    // Persist the network so the run can be reproduced or inspected offline.
    let path = std::env::temp_dir().join("spanner_zoo_network.graph");
    if io::save_graph(&network, &path).is_ok() {
        println!("\nnetwork written to {}", path.display());
    }
}
