//! Spanner zoo: every construction in the library run on the same network,
//! with size, weight, lightness and stretch-distribution statistics side by
//! side.
//!
//! This is the "which spanner should I use?" tour: the classic black boxes
//! (greedy, Baswana–Sen, Thorup–Zwick, ball-carving clusters), then every
//! undirected fault-tolerant construction in the `registry()`, selected
//! purely by name — the same loop a benchmark harness or a service
//! configuration would run.
//!
//! Run with:
//!
//! ```text
//! cargo run --example spanner_zoo
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn describe(name: &str, graph: &Graph, spanner: &EdgeSet, stretch: f64) {
    let basic = SpannerStats::collect(graph, spanner, stretch);
    let distribution = stats::stretch_stats(graph, spanner).expect("spanner matches the graph");
    let light = tree::lightness(graph, spanner).expect("spanner matches the graph");
    println!(
        "{name:<28} edges {:>5}  weight {:>8.1}  lightness {:>5.2}  \
         max-stretch {:>5.2}  mean-stretch {:>4.2}  exact {:>5.1}%",
        basic.spanner_edges,
        basic.spanner_weight,
        light,
        distribution.max,
        distribution.mean,
        100.0 * distribution.fraction_exact,
    );
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    // A weighted random geometric network: the classic "sensors on a field"
    // workload that motivates spanners in the first place.
    let n = 120;
    let network = generate::random_geometric(n, 0.22, generate::WeightKind::Euclidean, &mut rng);
    let cc = components::connected_components(&network);
    println!(
        "network: {} nodes, {} edges, {} component(s), max degree {}, MST weight {:.1}\n",
        network.node_count(),
        network.edge_count(),
        cc.count(),
        network.max_degree(),
        tree::mst_weight(&network),
    );

    println!("-- classic (non-fault-tolerant) spanners, stretch 3 --");
    let greedy = GreedySpanner::new(3.0).build(&network, &mut rng);
    describe("greedy (Althofer et al.)", &network, &greedy, 3.0);
    let bs = BaswanaSenSpanner::new(2).build(&network, &mut rng);
    describe("Baswana-Sen", &network, &bs, 3.0);
    let tz = ThorupZwickSpanner::new(2).build(&network, &mut rng);
    describe("Thorup-Zwick", &network, &tz, 3.0);
    let cluster = ClusterSpanner::for_stretch(3).build(&network, &mut rng);
    describe("cluster (ball carving)", &network, &cluster, 3.0);
    let mst = tree::minimum_spanning_forest(&network);
    describe("minimum spanning forest", &network, &mst, f64::INFINITY);

    println!("\n-- 1-fault-tolerant 3-spanners (Theorem 2.1 conversion) --");
    for black_box in [BlackBoxKind::Greedy, BlackBoxKind::ThorupZwick] {
        let result = FtSpannerBuilder::new("conversion")
            .faults(1)
            .stretch(3.0)
            .black_box(black_box)
            .scale(0.5)
            .build_with_rng(GraphInput::from(&network), &mut rng)
            .expect("conversion accepts undirected inputs");
        describe(
            &format!("conversion over {black_box}"),
            &network,
            result.edge_set().unwrap(),
            result.stretch,
        );
        let check = verify::verify_fault_tolerance_sampled(
            &network,
            result.edge_set().unwrap(),
            result.stretch,
            1,
            25,
            &mut rng,
        );
        println!(
            "{:>28} sampled verification: {} fault sets, worst stretch {:.2}, valid = {}",
            "",
            check.checked,
            check.worst_stretch,
            check.is_valid()
        );
    }

    println!("\n-- adaptive conversion (stops when verification passes) --");
    let adaptive = FtSpannerBuilder::new("adaptive")
        .faults(1)
        .stretch(3.0)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("adaptive accepts undirected inputs");
    describe(
        "adaptive conversion",
        &network,
        adaptive.edge_set().unwrap(),
        adaptive.stretch,
    );
    println!(
        "{:>28} used {} of {} iterations ({:.0}% of the theorem budget), verified = {:?}",
        "",
        adaptive.iterations,
        adaptive.theorem_iterations.unwrap_or(0),
        100.0 * adaptive.budget_fraction(),
        adaptive.verified.unwrap_or(false)
    );

    // The registry knows the whole zoo — print what else there is to try.
    println!("\n-- the full registry --");
    for algorithm in registry().iter() {
        println!(
            "{:<24} {:<28} [{}] {}",
            algorithm.name(),
            algorithm.reference(),
            algorithm.graph_family(),
            algorithm.summary()
        );
    }

    // Persist the network so the run can be reproduced or inspected offline.
    let path = std::env::temp_dir().join("spanner_zoo_network.graph");
    if io::save_graph(&network, &path).is_ok() {
        println!("\nnetwork written to {}", path.display());
    }
}
