//! Edge faults: links fail instead of routers.
//!
//! The paper's constructions tolerate *vertex* failures; this example uses
//! the library's edge-fault extension to protect a network against link
//! failures, compares it against the vertex-fault construction, and verifies
//! both with the centralized and the distributed (LOCAL-model) checkers.
//! Both fault models go through the same `FtSpannerBuilder`, switched by
//! `.edge_faults()` / `.vertex_faults()`.
//!
//! Run with:
//!
//! ```text
//! cargo run --example edge_fault_tolerance
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1337);

    // A small-world backbone: a ring lattice with a few random long links.
    let n = 50;
    let network = generate::watts_strogatz(n, 4, 0.2, &mut rng);
    println!(
        "backbone: {} routers, {} links, vertex connectivity {}",
        network.node_count(),
        network.edge_count(),
        components::vertex_connectivity(&network)
    );

    let stretch = 3.0;
    let r = 2;

    // Protect against r link failures.
    let edge_ft = FtSpannerBuilder::new("conversion")
        .edge_faults()
        .faults(r)
        .stretch(stretch)
        .scale(0.5)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("the conversion accepts edge-fault requests");
    println!(
        "\n{}: {} edges after {} iterations (mean surviving edges per iteration {:.1})",
        edge_ft.provenance,
        edge_ft.size(),
        edge_ft.iterations,
        edge_ft.mean_surviving_edges()
    );
    let edge_spanner = edge_ft.edge_set().expect("undirected construction");
    let lower = vertex_fault_size_lower_bound(&network, r);
    println!("degree lower bound for any {r}-fault-tolerant spanner: {lower} edges");

    // Exhaustive verification over all single link failures, sampled beyond.
    let report = verify::verify_edge_fault_tolerance_exhaustive(&network, edge_spanner, stretch, 1);
    println!(
        "all {} single-link failures verified, worst stretch {:.2}",
        report.checked - 1,
        report.worst_stretch
    );
    let sampled = verify::verify_edge_fault_tolerance_sampled(
        &network,
        edge_spanner,
        stretch,
        r,
        40,
        &mut rng,
    );
    println!(
        "{} sampled double-link failures verified, worst stretch {:.2}, valid = {}",
        sampled.checked - 1,
        sampled.worst_stretch,
        sampled.is_valid()
    );

    // Compare against protecting routers (vertex faults) on the same network.
    let vertex_ft = FtSpannerBuilder::new("conversion")
        .vertex_faults()
        .faults(r)
        .stretch(stretch)
        .scale(0.5)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("the conversion accepts vertex-fault requests");
    println!(
        "\nvertex-fault-tolerant 3-spanner for comparison: {} edges after {} iterations",
        vertex_ft.size(),
        vertex_ft.iterations
    );

    // Adversarial stress test: fail the heaviest links and the busiest hub.
    let heavy = faults::heavy_edge_faults(&network, r);
    let after_links = verify::max_stretch_under_edge_faults(&network, edge_spanner, &heavy);
    println!("after failing the {r} heaviest links: worst stretch {after_links:.2}");
    let hubs = faults::high_degree_faults(&network, r);
    let after_hubs =
        verify::max_stretch_under_faults(&network, vertex_ft.edge_set().unwrap(), &hubs);
    println!("after failing the {r} busiest routers: worst stretch {after_hubs:.2}");

    // The plain 3-spanner can be verified distributedly in 4 LOCAL rounds.
    let plain = GreedySpanner::new(stretch).build(&network, &mut rng);
    let check = distributed_stretch_check(&network, &plain, stretch as usize);
    println!(
        "\ndistributed stretch check of the plain spanner: {} rounds, {} messages, valid = {}",
        check.stats.rounds,
        check.stats.messages,
        check.is_valid()
    );

    assert!(sampled.is_valid());
    assert!(after_links <= stretch + 1e-9);
    println!("\nall checks passed.");
}
