//! Distributed construction in the LOCAL model: every node of the network
//! runs the algorithm itself, talking only to its neighbors.
//!
//! Demonstrates both distributed results of the paper:
//! Theorem 2.3 (fault-tolerant 3-spanner via local oversampling) and
//! Theorem 3.9 (the O(log n)-approximate fault-tolerant 2-spanner via padded
//! decompositions and per-cluster LPs) — both reached through the same
//! `FtSpannerBuilder` as their centralized counterparts, with the LOCAL-model
//! round/message accounting surfaced on the unified report.
//!
//! Run with:
//!
//! ```text
//! cargo run --example distributed_spanner
//! ```

use fault_tolerant_spanners::local::padded::{
    sample_padded_decomposition, PaddedDecompositionConfig,
};
use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // ---------------------------------------------------------------- k >= 3
    let n = 50;
    let network = generate::connected_gnp(n, 0.12, generate::WeightKind::Unit, &mut rng);
    println!(
        "undirected network: {} nodes, {} links",
        network.node_count(),
        network.edge_count()
    );

    let spanner = FtSpannerBuilder::new("distributed-conversion")
        .faults(1)
        .stretch(3.0)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("the distributed conversion accepts stretch-3 requests");
    println!(
        "Theorem 2.3: distributed 1-fault-tolerant 3-spanner with {} edges in {} LOCAL rounds \
         ({} messages, {} conversion iterations)",
        spanner.size(),
        spanner.rounds.unwrap(),
        spanner.messages.unwrap(),
        spanner.iterations
    );
    let report =
        verify::verify_fault_tolerance_exhaustive(&network, spanner.edge_set().unwrap(), 3.0, 1);
    println!(
        "verification: {} fault sets checked, worst stretch {:.3}, valid = {}",
        report.checked,
        report.worst_stretch,
        report.is_valid()
    );

    // A padded decomposition on its own, the tool behind Algorithm 2.
    let decomposition =
        sample_padded_decomposition(&network, &PaddedDecompositionConfig::default(), &mut rng);
    println!(
        "padded decomposition: {} clusters, max radius {}, padded fraction {:.2}, {} rounds",
        decomposition.centers().len(),
        decomposition.max_radius(),
        decomposition.padded_fraction(&network),
        decomposition.stats.rounds
    );

    // ----------------------------------------------------------------- k = 2
    let routers = 12;
    let directed = generate::directed_gnp(routers, 0.4, generate::WeightKind::Unit, &mut rng);
    println!(
        "\ndirected network: {} routers, {} links",
        directed.node_count(),
        directed.arc_count()
    );
    let two = FtSpannerBuilder::new("distributed-two-spanner")
        .faults(1)
        .repetitions(4)
        .build_with_rng(GraphInput::from(&directed), &mut rng)
        .expect("cluster LPs are always feasible");
    println!(
        "Theorem 3.9: distributed 1-fault-tolerant 2-spanner with cost {:.0} in {} LOCAL rounds \
         ({} repetitions, {} repaired arcs)",
        two.cost,
        two.rounds.unwrap(),
        two.iterations,
        two.repaired_arcs
    );
    assert!(verify::is_ft_two_spanner(
        &directed,
        two.arc_set().unwrap(),
        1
    ));
    println!("verification: valid 1-fault-tolerant 2-spanner");
}
