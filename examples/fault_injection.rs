//! Fault-injection study: how does a fault-tolerant spanner behave as nodes
//! keep failing — including beyond the number of faults it was built for?
//!
//! The paper's guarantee is sharp at `r` faults; this example measures the
//! degradation curve empirically, comparing a plain 3-spanner, an
//! `r = 1` and an `r = 3` fault-tolerant spanner under increasing numbers of
//! random and adversarial (highest-degree) failures.
//!
//! Run with:
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn stretch_percentile(
    graph: &Graph,
    spanner: &EdgeSet,
    failures: usize,
    trials: usize,
    rng: &mut ChaCha8Rng,
) -> (f64, f64) {
    // Returns (share of trials that stayed a 3-spanner, worst stretch seen).
    let mut ok = 0usize;
    let mut worst: f64 = 1.0;
    for _ in 0..trials {
        let faults = faults::sample_fault_set(graph.node_count(), failures, rng);
        let s = verify::max_stretch_under_faults(graph, spanner, &faults);
        if s <= 3.0 + 1e-9 {
            ok += 1;
        }
        worst = worst.max(s);
    }
    (ok as f64 / trials as f64, worst)
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n = 70;
    let network = generate::connected_gnp(n, 0.12, generate::WeightKind::Unit, &mut rng);
    println!(
        "network: {} nodes, {} links\n",
        network.node_count(),
        network.edge_count()
    );

    let plain = GreedySpanner::new(3.0).build(&network, &mut rng);
    // The same builder, re-targeted at two fault budgets.
    let builder = FtSpannerBuilder::new("corollary-2.2").stretch(3.0);
    let ft1 = builder
        .clone()
        .faults(1)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("corollary-2.2 accepts undirected inputs");
    let ft3 = builder
        .faults(3)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("corollary-2.2 accepts undirected inputs");

    println!("spanner sizes (edges):");
    println!("  plain greedy 3-spanner : {}", plain.len());
    println!("  1-fault tolerant       : {}", ft1.size());
    println!("  3-fault tolerant       : {}\n", ft3.size());

    let trials = 60;
    println!("random failures: share of trials still a 3-spanner (worst stretch)");
    println!(
        "{:>9} | {:>22} | {:>22} | {:>22}",
        "failures", "plain", "r = 1", "r = 3"
    );
    for failures in [1usize, 2, 3, 4, 6] {
        let (p_ok, p_worst) = stretch_percentile(&network, &plain, failures, trials, &mut rng);
        let (a_ok, a_worst) = stretch_percentile(
            &network,
            ft1.edge_set().unwrap(),
            failures,
            trials,
            &mut rng,
        );
        let (b_ok, b_worst) = stretch_percentile(
            &network,
            ft3.edge_set().unwrap(),
            failures,
            trials,
            &mut rng,
        );
        println!(
            "{:>9} | {:>13.2} ({:>5.2}) | {:>13.2} ({:>5.2}) | {:>13.2} ({:>5.2})",
            failures, p_ok, p_worst, a_ok, a_worst, b_ok, b_worst
        );
    }

    println!("\nadversarial (highest-degree) failures: worst surviving stretch");
    println!(
        "{:>9} | {:>8} | {:>8} | {:>8}",
        "failures", "plain", "r = 1", "r = 3"
    );
    for failures in [1usize, 2, 3] {
        let hubs = faults::high_degree_faults(&network, failures);
        let p = verify::max_stretch_under_faults(&network, &plain, &hubs);
        let a = verify::max_stretch_under_faults(&network, ft1.edge_set().unwrap(), &hubs);
        let b = verify::max_stretch_under_faults(&network, ft3.edge_set().unwrap(), &hubs);
        println!("{failures:>9} | {p:>8.2} | {a:>8.2} | {b:>8.2}");
    }

    // The r = 3 spanner must survive any 3 failures — including the hubs.
    let hubs = faults::high_degree_faults(&network, 3);
    assert!(
        verify::max_stretch_under_faults(&network, ft3.edge_set().unwrap(), &hubs) <= 3.0 + 1e-9
    );
    println!("\nr = 3 spanner verified against the 3 busiest hubs failing simultaneously.");
}
