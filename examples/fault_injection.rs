//! Fault-injection study: how does a fault-tolerant spanner behave as nodes
//! keep failing — including beyond the number of faults it was built for?
//!
//! The paper's guarantee is sharp at `r` faults; this example measures the
//! degradation curve empirically, comparing a plain 3-spanner, an
//! `r = 1` and an `r = 3` fault-tolerant spanner under increasing numbers of
//! random and adversarial (highest-degree) failures. All three are served as
//! [`FtSpanner`] artifacts: within-budget fault sets go through the checked
//! [`FtSpanner::under_faults`] session, beyond-budget ones through the
//! explicitly unchecked escape hatch — the API makes the difference visible.
//!
//! Run with:
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn stretch_percentile(
    artifact: &FtSpanner,
    failures: usize,
    trials: usize,
    rng: &mut ChaCha8Rng,
) -> (f64, f64) {
    // Returns (share of trials that stayed a 3-spanner, worst stretch seen).
    let mut ok = 0usize;
    let mut worst: f64 = 1.0;
    for _ in 0..trials {
        let faults = faults::sample_fault_set(artifact.node_count(), failures, rng);
        // Within the declared budget the checked session applies; beyond it
        // we are deliberately off the guarantee, so say so in the code.
        let session = if failures <= artifact.fault_budget() {
            artifact.under_faults(faults.nodes())
        } else {
            artifact.under_faults_unchecked(faults.nodes())
        }
        .expect("sampled faults are valid vertices");
        let s = session.max_stretch();
        if s <= 3.0 + 1e-9 {
            ok += 1;
        }
        worst = worst.max(s);
    }
    (ok as f64 / trials as f64, worst)
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n = 70;
    let network = generate::connected_gnp(n, 0.12, generate::WeightKind::Unit, &mut rng);
    println!(
        "network: {} nodes, {} links\n",
        network.node_count(),
        network.edge_count()
    );

    // The plain greedy 3-spanner, adopted as an artifact with a declared
    // zero-fault budget (it promises nothing under failures).
    let plain_edges = GreedySpanner::new(3.0).build(&network, &mut rng);
    let plain = FtSpanner::from_edge_set(
        &network,
        plain_edges,
        "greedy",
        "plain greedy 3-spanner (no fault tolerance)",
        FaultModel::Vertex,
        0,
        3.0,
    )
    .expect("the greedy spanner was built for this network");
    // The same builder, re-targeted at two fault budgets.
    let builder = FtSpannerBuilder::new("corollary-2.2").stretch(3.0);
    let ft1 = builder
        .clone()
        .faults(1)
        .build_artifact_with_rng(&network, &mut rng)
        .expect("corollary-2.2 accepts undirected inputs");
    let ft3 = builder
        .faults(3)
        .build_artifact_with_rng(&network, &mut rng)
        .expect("corollary-2.2 accepts undirected inputs");

    println!("spanner sizes (edges):");
    println!("  plain greedy 3-spanner : {}", plain.spanner_edge_count());
    println!("  1-fault tolerant       : {}", ft1.spanner_edge_count());
    println!("  3-fault tolerant       : {}\n", ft3.spanner_edge_count());

    let trials = 60;
    println!("random failures: share of trials still a 3-spanner (worst stretch)");
    println!(
        "{:>9} | {:>22} | {:>22} | {:>22}",
        "failures", "plain", "r = 1", "r = 3"
    );
    for failures in [1usize, 2, 3, 4, 6] {
        let (p_ok, p_worst) = stretch_percentile(&plain, failures, trials, &mut rng);
        let (a_ok, a_worst) = stretch_percentile(&ft1, failures, trials, &mut rng);
        let (b_ok, b_worst) = stretch_percentile(&ft3, failures, trials, &mut rng);
        println!(
            "{:>9} | {:>13.2} ({:>5.2}) | {:>13.2} ({:>5.2}) | {:>13.2} ({:>5.2})",
            failures, p_ok, p_worst, a_ok, a_worst, b_ok, b_worst
        );
    }

    println!("\nadversarial (highest-degree) failures: worst surviving stretch");
    println!(
        "{:>9} | {:>8} | {:>8} | {:>8}",
        "failures", "plain", "r = 1", "r = 3"
    );
    for failures in [1usize, 2, 3] {
        let hubs = faults::high_degree_faults(&network, failures);
        let row: Vec<f64> = [&plain, &ft1, &ft3]
            .iter()
            .map(|artifact| {
                artifact
                    .under_faults_unchecked(hubs.nodes())
                    .expect("hub faults are valid vertices")
                    .max_stretch()
            })
            .collect();
        println!(
            "{failures:>9} | {:>8.2} | {:>8.2} | {:>8.2}",
            row[0], row[1], row[2]
        );
    }

    // The r = 3 spanner must survive any 3 failures — including the hubs.
    // This goes through the *checked* session: 3 faults are within budget.
    let hubs = faults::high_degree_faults(&network, 3);
    let session = ft3
        .under_faults(hubs.nodes())
        .expect("3 faults are within the r = 3 budget");
    assert!(session.is_within_guarantee());
    println!("\nr = 3 spanner verified against the 3 busiest hubs failing simultaneously.");
}
