//! The full serving lifecycle: build artifacts, persist them as binary
//! `.ftspan` files through an [`ArtifactStore`], cold-load them into an
//! [`Engine`], and serve a planner-friendly batch — thousands of queries
//! sharing a handful of fault scopes, the regime the query planner and the
//! per-source Dijkstra cache are built for.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving_store
//! ```

use fault_tolerant_spanners::prelude::*;
use fault_tolerant_spanners::ArtifactStore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2011);
    let n = 80;
    let network = generate::connected_gnp(n, 0.08, generate::WeightKind::Unit, &mut rng);
    println!(
        "network: {} nodes, {} edges",
        network.node_count(),
        network.edge_count()
    );

    // Construction machine: build two artifacts and persist them.
    let dir = std::env::temp_dir().join(format!("ftspan-serving-store-{}", std::process::id()));
    let store = ArtifactStore::open(&dir).expect("temp dir is writable");
    for (name, algorithm, faults) in [
        ("core-r2", "conversion", 2),
        ("thin-r1", "corollary-2.2", 1),
    ] {
        let artifact = FtSpannerBuilder::new(algorithm)
            .faults(faults)
            .seed(7)
            .build_artifact(&network)
            .expect("construction succeeds on a connected input");
        let path = store.save(name, &artifact).expect("artifact saves");
        println!(
            "saved {:<8} -> {} ({} spanner edges, guarantee ({}, {}))",
            name,
            path.display(),
            artifact.spanner_edge_count(),
            artifact.stretch(),
            artifact.fault_budget(),
        );
    }

    // Serving machine: cold start from the store directory.
    let start = Instant::now();
    let mut engine = Engine::new();
    let loaded = store.load_into(&mut engine).expect("artifacts load back");
    println!("cold-loaded {loaded:?} in {:?}", start.elapsed());

    // A serving batch in the planner's favorite shape: many queries, few
    // distinct (artifact, fault scope) groups, repeated sources.
    let scopes = [
        vec![NodeId::new(3), NodeId::new(17)],
        vec![NodeId::new(40)],
        vec![],
    ];
    let queries: Vec<Query> = (0..30_000)
        .map(|q| {
            let name = if q % 5 == 0 { "thin-r1" } else { "core-r2" };
            let scope = match (name, &scopes[q % 3]) {
                // The thin artifact only tolerates one fault.
                ("thin-r1", s) => s.iter().take(1).copied().collect(),
                (_, s) => s.clone(),
            };
            let u = NodeId::new((q * 13) % 16); // 16 hot sources
            let v = NodeId::new((q * 7 + 5) % n);
            match q % 11 {
                0 => Query::certificate(name, scope, u, v),
                1 => Query::path(name, scope, u, v),
                _ => Query::distance(name, scope, u, v),
            }
        })
        .collect();

    let start = Instant::now();
    let results = engine.run_batch(&queries);
    let elapsed = start.elapsed();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "planned batch: {} queries in {:?} ({:.0} queries/sec, {} ok)",
        results.len(),
        elapsed,
        results.len() as f64 / elapsed.as_secs_f64(),
        ok,
    );

    // The naive executor (one fresh session per query) answers identically —
    // the planner is pure speed.
    let start = Instant::now();
    let naive = engine.run_batch_naive(&queries[..3_000]);
    let naive_elapsed = start.elapsed() * 10; // scaled to the full batch
    assert_eq!(&results[..3_000], &naive[..]);
    println!(
        "naive estimate for the same batch: ~{naive_elapsed:?} — \
         the planner reuses sessions and per-source trees instead"
    );

    std::fs::remove_dir_all(store.dir()).ok();
}
