//! Network design with costs: buy a cheapest set of directed links so that
//! every business-critical connection survives router failures with at most
//! one extra hop.
//!
//! This is the Minimum Cost r-Fault Tolerant 2-Spanner problem of Section 3
//! of the paper: the input is a directed graph whose arcs have purchase
//! costs, and the output must contain, for every input arc, either the arc
//! itself or — even after any `r` routers fail — a surviving two-hop detour.
//!
//! Run with:
//!
//! ```text
//! cargo run --example network_design
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // A 14-router network; long-haul links are expensive, local ones cheap.
    let n = 14;
    let network = generate::directed_gnp(
        n,
        0.45,
        generate::WeightKind::Uniform { min: 1.0, max: 8.0 },
        &mut rng,
    );
    println!(
        "network: {} routers, {} candidate links, total catalogue cost {:.1}",
        network.node_count(),
        network.arc_count(),
        network.total_cost()
    );

    let faults = 1;

    // Theorem 3.3: LP (4) + threshold rounding, O(log n)-approximation.
    let ours = FtSpannerBuilder::new("two-spanner-lp")
        .faults(faults)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("relaxation is always feasible on a well-formed instance");
    println!(
        "Dinitz-Krauthgamer O(log n) rounding: cost {:.1} (LP lower bound {:.1}, ratio {:.2}, \
         {} knapsack-cover cuts, {} repaired arcs)",
        ours.cost,
        ours.lp_objective.unwrap(),
        ours.ratio_vs_lp().unwrap(),
        ours.cuts_added.unwrap(),
        ours.repaired_arcs
    );
    let plan = ours.arc_set().expect("directed construction");
    assert!(verify::is_ft_two_spanner(&network, plan, faults));

    // The previous DK10 rounding needs inflation Θ(r log n) on the weaker LP.
    let dk10 = FtSpannerBuilder::new("dk10")
        .faults(faults)
        .build_with_rng(GraphInput::from(&network), &mut rng)
        .expect("relaxation is always feasible on a well-formed instance");
    println!(
        "DK10 O(r log n) baseline:             cost {:.1} (ratio vs its LP {:.2})",
        dk10.cost,
        dk10.ratio_vs_lp().unwrap()
    );

    // Trivial upper bound: buy every link.
    println!(
        "buy-everything baseline:              cost {:.1}",
        network.total_cost()
    );

    // Show what fault tolerance buys: the definitional oracle enumerates
    // every fault set of size <= r and checks each surviving connection for
    // a surviving two-hop route — no hand-rolled coverage scan needed.
    let survives_all = verify::is_ft_two_spanner_by_definition(&network, plan, faults);
    println!("every connection survives every set of <= {faults} router failures: {survives_all}");
    assert!(survives_all);
}
