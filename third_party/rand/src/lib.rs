//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate.
//!
//! The workspace pins its random-number interface to the `rand` 0.8 API, but
//! the build environment has no network access, so this vendored crate
//! provides the (small) surface actually used:
//!
//! * [`RngCore`] — the object-safe generator core (`&mut dyn RngCore` is the
//!   currency of every construction in the workspace);
//! * [`Rng`] — the ergonomic extension trait (`gen`, `gen_range`, `gen_bool`),
//!   blanket-implemented for every `RngCore`;
//! * [`SeedableRng`] — deterministic seeding, including `seed_from_u64`;
//! * [`distributions::Standard`] — uniform primitives (`f64` in `[0, 1)`,
//!   integers over their full range, `bool` fair coin);
//! * [`seq::SliceRandom`] — Fisher–Yates shuffling and uniform choice.
//!
//! The numeric behaviour matches `rand` where the workspace depends on it
//! (e.g. `f64` samples are uniform in `[0, 1)` with 53 random bits); exact
//! stream compatibility with upstream `rand` is *not* a goal — every consumer
//! in the workspace treats the generator as an opaque seeded source.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of random machine words.
///
/// Object safe; the workspace passes generators as `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ergonomic sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (`f64` uniform in `[0, 1)`, integers over their range).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable generator with a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// distinct `u64` seeds give uncorrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// A range from which a single value can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; the bias for spans far
                // below 2^64 is negligible for this workspace's use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<i64> for Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start.wrapping_add(hi as i64)
    }
}

pub mod distributions {
    //! The [`Standard`] distribution over primitive types.

    use super::RngCore;

    /// A distribution that can produce values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform floats in `[0, 1)`, uniform
    /// integers over their full range, fair booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random bits, uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty => $via:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }

    impl_standard_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64
    );
}

pub mod seq {
    //! Random operations on slices.

    use super::{Rng, RngCore};

    /// Shuffling and uniform choice on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but sufficient mixing for unit tests of the adapters.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                for (d, s) in chunk.iter_mut().zip(bytes) {
                    *d = s;
                }
            }
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = Counter(1);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x: f64 = dynamic.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
