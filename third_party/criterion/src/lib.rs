//! Offline, API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) benchmarking harness.
//!
//! The build environment has no network access, so this vendored crate
//! implements the surface the workspace's benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and
//! [`black_box`]. Each benchmark is timed over `sample_size` samples (after
//! one warm-up run) and reported as a `min / median / max` line on stdout —
//! honest wall-clock numbers without upstream criterion's statistical
//! machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How much per-iteration setup data to batch (accepted for API
/// compatibility; this harness re-runs the setup for every iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier, rendered into the reported name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new<D: Display, P: Display>(function_name: D, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh values produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.durations.is_empty() {
            println!("bench {name:<55} (no samples)");
            return;
        }
        self.durations.sort_unstable();
        let min = self.durations[0];
        let median = self.durations[self.durations.len() / 2];
        let max = self.durations[self.durations.len() - 1];
        println!(
            "bench {name:<55} min {:>12?}  median {:>12?}  max {:>12?}  ({} samples)",
            min,
            median,
            max,
            self.durations.len()
        );
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<D: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<D: Display>(&mut self, name: D) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }
}

/// Declares a group of benchmark functions (each `fn(&mut Criterion)`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("unit/counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // one warm-up + default samples
        assert_eq!(runs, 11);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut setups = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
