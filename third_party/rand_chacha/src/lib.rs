//! Offline stand-in for [`rand_chacha`](https://docs.rs/rand_chacha/0.3).
//!
//! The workspace uses `ChaCha8Rng` purely as a *deterministic, seedable,
//! statistically solid* generator for reproducible experiments — never for
//! cryptography. Since the build environment has no network access, this
//! vendored crate exposes the same name and trait surface
//! ([`rand::SeedableRng`] with a 32-byte seed, [`rand::RngCore`]) backed by
//! xoshiro256++, a small high-quality non-cryptographic PRNG. Seeded streams
//! are stable across runs and platforms, which is all the workspace relies
//! on; the byte streams do not match upstream ChaCha8.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A deterministic seedable generator (xoshiro256++ core; see the crate docs
/// for why it carries the ChaCha8 name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

impl ChaCha8Rng {
    fn step(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            state[i] = u64::from_le_bytes(word);
        }
        // The all-zero state is the one fixed point of the xoshiro transition;
        // nudge it to a fixed non-zero constant.
        if state.iter().all(|&w| w == 0) {
            state = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        let mut rng = ChaCha8Rng { state };
        // A few warm-up rounds decorrelate structurally similar seeds.
        for _ in 0..8 {
            rng.step();
        }
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            for (d, s) in chunk.iter_mut().zip(bytes) {
                *d = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
    }

    #[test]
    fn f64_stream_is_roughly_uniform() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
