//! Offline, API-compatible subset of
//! [`proptest`](https://docs.rs/proptest/1) — the build environment has no
//! network access, so this vendored crate implements the surface the
//! workspace's property tests use:
//!
//! * [`proptest!`] — the test-declaration macro (with `#![proptest_config]`);
//! * [`prop_assert!`] / [`prop_assert_eq!`] — failing assertions that abort
//!   only the current case with a message;
//! * [`any`] — strategies for primitives; integer ranges (`0usize..40`) and
//!   [`collection::vec`] as composite strategies;
//! * [`ProptestConfig`] — the `cases` knob.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case reports
//! its case index and generated inputs' debug representation, which for this
//! workspace's small generated graphs is enough to reproduce (generation is
//! deterministic per test name).

#![forbid(unsafe_code)]

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub mod test_runner {
    //! The deterministic generator and error type behind [`proptest!`](crate::proptest).

    /// Error aborting a single generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail<M: Into<String>>(message: M) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// A small deterministic PRNG (xorshift*), seeded per test from the test
    /// name so failures reproduce run over run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically from `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for byte in name.bytes() {
                state ^= u64::from(byte);
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: state | 1 }
        }

        /// The next random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating values.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value-generation strategy.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Strategy returned by [`any`](crate::any).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Strategy for Any<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The strategy generating arbitrary values of a primitive type.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::default()
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values with a length drawn
    /// from `size` (half-open, like upstream proptest).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything a `proptest!` block needs in scope.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Declares property tests: each function body runs for `cases` generated
/// inputs, drawn from the strategy after each argument's `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  ",)+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let Err(error) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        error,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(n in 3usize..17, k in 1u64..5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((1..5).contains(&k));
        }

        /// Vec strategies respect length bounds and element strategies.
        #[test]
        fn vecs_in_bounds(v in crate::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
        }

        /// Early `return Ok(())` is supported.
        #[test]
        fn early_return(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn prop_assert_failure_carries_message() {
        let check = |x: usize| -> Result<(), TestCaseError> {
            prop_assert!(x > 10, "x was {}", x);
            Ok(())
        };
        assert!(check(11).is_ok());
        let err = check(3).unwrap_err();
        assert_eq!(err.to_string(), "x was 3");
    }

    #[test]
    fn prop_assert_eq_reports_values() {
        let check = || -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        };
        let err = check().unwrap_err();
        assert!(err.to_string().contains("left: 2"));
    }
}
